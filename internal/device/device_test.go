package device

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNVDIMM: "NVDIMM",
		KindSSD:    "SSD",
		KindHDD:    "HDD",
		Kind(7):    "kind(7)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestBaseAccounting(t *testing.T) {
	b := NewBase("dev0", KindSSD, 1000)
	if b.Name() != "dev0" || b.Kind() != KindSSD || b.Capacity() != 1000 {
		t.Fatal("identity wrong")
	}
	if b.Used() != 0 || b.FreeSpaceRatio() != 1 {
		t.Fatal("fresh device not empty")
	}
	b.SetUsed(250)
	if b.Used() != 250 || b.FreeSpaceRatio() != 0.75 {
		t.Fatalf("used=%d free=%v", b.Used(), b.FreeSpaceRatio())
	}
	// Clamping.
	b.SetUsed(-5)
	if b.Used() != 0 {
		t.Fatal("negative used not clamped")
	}
	b.SetUsed(2000)
	if b.Used() != 1000 || b.FreeSpaceRatio() != 0 {
		t.Fatal("over-capacity used not clamped")
	}
}

func TestBaseZeroCapacity(t *testing.T) {
	b := NewBase("z", KindHDD, 0)
	if b.FreeSpaceRatio() != 0 {
		t.Fatal("zero-capacity free ratio should be 0")
	}
}

func TestMetricsObserve(t *testing.T) {
	m := NewMetrics("dev")
	r := &trace.IORequest{Op: trace.OpRead, Size: 4096, Issue: 0, Complete: 100_000}
	m.Observe(r)
	w := &trace.IORequest{Op: trace.OpWrite, Size: 8192, Issue: 0, Complete: 300_000}
	m.Observe(w)
	if m.TotalReads != 1 || m.TotalWrites != 1 || m.TotalBytes != 12288 {
		t.Fatalf("counters: %d/%d/%d", m.TotalReads, m.TotalWrites, m.TotalBytes)
	}
	// 100us and 300us → mean 200us.
	if m.Lifetime.Mean() != 200 {
		t.Fatalf("lifetime mean = %v", m.Lifetime.Mean())
	}
	if m.WindowMeanLatencyUS() != 200 || m.WindowRequests() != 2 {
		t.Fatalf("window: %v / %d", m.WindowMeanLatencyUS(), m.WindowRequests())
	}
}

func TestMetricsWindowReset(t *testing.T) {
	m := NewMetrics("dev")
	m.Observe(&trace.IORequest{Op: trace.OpRead, Size: 4096, Issue: 0, Complete: 1000})
	m.AddContention(5)
	m.ResetWindow(42)
	if m.WindowRequests() != 0 || m.WindowMeanLatencyUS() != 0 {
		t.Fatal("window not reset")
	}
	if m.ContentionUS != 0 {
		t.Fatal("window contention not reset")
	}
	if m.LifetimeContentionUS != 5 {
		t.Fatal("lifetime contention lost on window reset")
	}
	if m.WindowStart() != 42 {
		t.Fatalf("window start = %v", m.WindowStart())
	}
	if m.TotalReads != 1 || m.Lifetime.N() != 1 {
		t.Fatal("lifetime stats lost on window reset")
	}
}

func TestMetricsString(t *testing.T) {
	m := NewMetrics("mydev")
	s := m.String()
	if !strings.Contains(s, "mydev") {
		t.Fatalf("string missing name: %s", s)
	}
}

// Property: FreeSpaceRatio stays in [0,1] for any SetUsed input.
func TestFreeSpaceRatioBoundsProperty(t *testing.T) {
	b := NewBase("p", KindNVDIMM, 1<<30)
	f := func(used int64) bool {
		b.SetUsed(used)
		r := b.FreeSpaceRatio()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
