package ssd

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func testSSD(t *testing.T) (*sim.Engine, *SSD) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig("ssd0", 2<<30, 64)
	cfg.Flash.NumChannels = 4
	cfg.Flash.ChipsPerChannel = 2
	cfg.Flash.PagesPerBlock = 16
	cfg.MaxPendingFlush = 16
	return eng, New(eng, cfg)
}

func run(t *testing.T, eng *sim.Engine, s *SSD, r *trace.IORequest) *trace.IORequest {
	t.Helper()
	done := false
	s.Submit(r, func(*trace.IORequest) { done = true })
	eng.Run()
	if !done {
		t.Fatal("request never completed")
	}
	return r
}

func TestLinkTime(t *testing.T) {
	// 4096 bytes at 4096 MB/s = 1 µs.
	if got := linkTime(4096); got != sim.Microsecond {
		t.Fatalf("linkTime = %v", got)
	}
	if linkTime(0) != 0 || linkTime(-1) != 0 {
		t.Fatal("non-positive sizes should be free")
	}
	if linkTime(1) < 1 {
		t.Fatal("sub-ns transfer should round up")
	}
}

func TestReadLatencyBallpark(t *testing.T) {
	eng, s := testSSD(t)
	r := run(t, eng, s, &trace.IORequest{Op: trace.OpRead, Offset: 0, Size: 4096})
	// Overhead (250us) + flash (60us) + link (~1us): Table 1 PCIe SSD
	// reads are ~400us loaded; QD1 lands a bit above 300us.
	if r.Latency() < 300*sim.Microsecond || r.Latency() > 500*sim.Microsecond {
		t.Fatalf("SSD read latency = %v, want ~310-400us", r.Latency())
	}
}

func TestWriteLatencyBallpark(t *testing.T) {
	eng, s := testSSD(t)
	r := run(t, eng, s, &trace.IORequest{Op: trace.OpWrite, Offset: 0, Size: 4096})
	// Table 1: ~15 µs buffered write.
	if r.Latency() < 10*sim.Microsecond || r.Latency() > 30*sim.Microsecond {
		t.Fatalf("SSD write latency = %v, want ~15us", r.Latency())
	}
}

func TestWriteMuchFasterThanRead(t *testing.T) {
	eng, s := testSSD(t)
	w := run(t, eng, s, &trace.IORequest{Op: trace.OpWrite, Offset: 0, Size: 4096})
	r := run(t, eng, s, &trace.IORequest{Op: trace.OpRead, Offset: 1 << 20, Size: 4096})
	if w.Latency()*5 > r.Latency() {
		t.Fatalf("write (%v) should be far faster than read (%v)", w.Latency(), r.Latency())
	}
}

func TestReadAfterWriteServedFromBuffer(t *testing.T) {
	eng, s := testSSD(t)
	s.Submit(&trace.IORequest{Op: trace.OpWrite, Offset: 0, Size: 4096}, nil)
	// Immediately read the same page while the flush is still in flight.
	r := &trace.IORequest{Op: trace.OpRead, Offset: 0, Size: 4096}
	s.Submit(r, nil)
	eng.Run()
	// Buffer-resident: no flash sense needed, so latency ≈ overhead+link.
	if r.Latency() > ReadOverhead+10*sim.Microsecond {
		t.Fatalf("buffered read latency = %v", r.Latency())
	}
}

func TestOutstandingIOsRaiseLatency(t *testing.T) {
	// Fig. 5(a): latency rises with outstanding I/Os.
	meanAt := func(qd int) float64 {
		eng, s := testSSD(t)
		for i := 0; i < qd; i++ {
			s.Submit(&trace.IORequest{Op: trace.OpRead, Offset: int64(i) * 1 << 20, Size: 4096}, nil)
		}
		eng.Run()
		return s.Metrics().Lifetime.Mean()
	}
	if meanAt(16) <= meanAt(1) {
		t.Fatal("QD16 mean latency should exceed QD1")
	}
}

func TestPrefillAndFreeSpace(t *testing.T) {
	_, s := testSSD(t)
	if s.FreeSpaceRatio() != 1 {
		t.Fatal("fresh SSD not empty")
	}
	s.Prefill(0.8)
	if fs := s.FreeSpaceRatio(); fs > 0.25 {
		t.Fatalf("free space after 80%% prefill = %v", fs)
	}
}

func TestWriteBackpressure(t *testing.T) {
	eng, s := testSSD(t)
	completions := 0
	const n = 300
	for i := 0; i < n; i++ {
		s.Submit(&trace.IORequest{Op: trace.OpWrite, Offset: int64(i) * 4096, Size: 4096},
			func(*trace.IORequest) { completions++ })
	}
	eng.Run()
	if completions != n {
		t.Fatalf("completions = %d/%d", completions, n)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
}

func TestKind(t *testing.T) {
	_, s := testSSD(t)
	if s.Kind().String() != "SSD" {
		t.Fatalf("kind = %v", s.Kind())
	}
}
