// Package ssd models the PCIe solid-state drive of Table 4: the same NAND
// array and page-level FTL as the NVDIMM, but attached through a dedicated
// PCIe 2.0 ×8 link (4096 MB/s) instead of the shared memory channel — so
// SSD latency is immune to memory-bus contention, which is exactly why the
// paper's management layer treats it differently from the NVDIMM (Eq. 5).
package ssd

import (
	"repro/internal/device"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Link and stack constants.
const (
	// LinkBandwidth is the PCIe 2.0 ×8 payload bandwidth (Table 4).
	LinkBandwidth = int64(4096) * 1000 * 1000 // bytes/sec
	// ReadOverhead is the host I/O-stack plus device firmware latency on
	// the synchronous read path. Chosen so read latency lands in the
	// Table 1 PCIe-SSD ballpark (~400 µs loaded, vs ~150 µs NVDIMM).
	ReadOverhead = 250 * sim.Microsecond
	// WriteOverhead is the (much cheaper) acknowledged-at-buffer write
	// path overhead (Table 1: ~15 µs writes).
	WriteOverhead = 12 * sim.Microsecond
)

// linkTime returns PCIe occupancy for n bytes.
func linkTime(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	t := sim.Time(float64(n) / float64(LinkBandwidth) * 1e9)
	if t < 1 {
		t = 1
	}
	return t
}

// Config parameterizes an SSD.
type Config struct {
	Name          string
	Capacity      int64
	Flash         flash.Config
	NumBlocks     int
	OverProvision float64
	// MaxPendingFlush bounds the dirty backlog before writes stall.
	MaxPendingFlush int
	// WriteBufferPages is the device DRAM write buffer size in pages.
	WriteBufferPages int
}

// DefaultConfig returns a Table 4-shaped SSD scaled to the simulated
// flash footprint.
func DefaultConfig(name string, capacity int64, numBlocks int) Config {
	return Config{
		Name:             name,
		Capacity:         capacity,
		Flash:            flash.DefaultConfig(),
		NumBlocks:        numBlocks,
		OverProvision:    0.07,
		MaxPendingFlush:  256,
		WriteBufferPages: 4096,
	}
}

// SSD is the device.
type SSD struct {
	device.Base
	eng *sim.Engine
	fl  *flash.Array
	ftl *ftl.FTL
	cfg Config

	linkBusyUntil sim.Time
	pendingFlush  int
	stalls        []func()
	outstanding   int
	// bufferResident tracks pages acknowledged but not yet flushed, so
	// reads of freshly written data are served from the buffer.
	bufferResident map[int64]int
}

var _ device.Device = (*SSD)(nil)

// New builds an SSD.
func New(eng *sim.Engine, cfg Config) *SSD {
	if cfg.MaxPendingFlush <= 0 {
		cfg.MaxPendingFlush = 256
	}
	fl := flash.New(eng, cfg.Flash)
	return &SSD{
		Base:           device.NewBase(cfg.Name, device.KindSSD, cfg.Capacity),
		eng:            eng,
		fl:             fl,
		ftl:            ftl.New(eng, fl, ftl.Config{NumBlocks: cfg.NumBlocks, OverProvision: cfg.OverProvision, GCLowWater: 4}),
		cfg:            cfg,
		bufferResident: make(map[int64]int),
	}
}

// FTL exposes the translation layer for instrumentation.
func (s *SSD) FTL() *ftl.FTL { return s.ftl }

// Outstanding returns in-flight request count.
func (s *SSD) Outstanding() int { return s.outstanding }

// RegisterTelemetry exposes the SSD under prefix (e.g. "node0.ssd."):
// device metrics plus write-buffer backlog and FTL/GC state.
func (s *SSD) RegisterTelemetry(reg *telemetry.Registry, prefix string) {
	s.Metrics().RegisterTelemetry(reg, prefix)
	reg.Gauge(prefix+"pending_flush", func() float64 { return float64(s.pendingFlush) })
	reg.Gauge(prefix+"outstanding", func() float64 { return float64(s.outstanding) })
	reg.Gauge(prefix+"free_space_ratio", s.FreeSpaceRatio)
	reg.Gauge(prefix+"ftl.gc_runs", func() float64 { return float64(s.ftl.Stats().GCRuns) })
	reg.Gauge(prefix+"ftl.gc_writes", func() float64 { return float64(s.ftl.Stats().GCWrites) })
	reg.Gauge(prefix+"ftl.erases", func() float64 { return float64(s.ftl.Stats().Erases) })
	reg.Gauge(prefix+"ftl.free_blocks", func() float64 { return float64(s.ftl.FreeBlocks()) })
	reg.Gauge(prefix+"ftl.write_amp", s.ftl.WriteAmplification)
}

// Prefill fills the FTL and management accounting to ratio.
func (s *SSD) Prefill(ratio float64) {
	s.ftl.Prefill(ratio)
	s.SetUsed(int64(ratio * float64(s.Capacity())))
}

// FreeSpaceRatio reports the tighter of management and FTL free space.
func (s *SSD) FreeSpaceRatio() float64 {
	mgmt := s.Base.FreeSpaceRatio()
	phys := s.ftl.FreeSpaceRatio()
	if phys < mgmt {
		return phys
	}
	return mgmt
}

// acquireLink serializes transfers on the PCIe link.
func (s *SSD) acquireLink(bytes int64, fn func()) {
	hold := linkTime(bytes)
	start := s.eng.Now()
	if s.linkBusyUntil > start {
		start = s.linkBusyUntil
	}
	s.linkBusyUntil = start + hold
	s.eng.At(start+hold, fn)
}

// pagesOf splits a request into LPNs.
func (s *SSD) pagesOf(r *trace.IORequest) []int64 {
	ps := s.ftl.PageSize()
	first := r.Offset / ps
	last := (r.Offset + r.Size - 1) / ps
	if r.Size <= 0 {
		last = first
	}
	lpns := make([]int64, 0, last-first+1)
	for p := first; p <= last; p++ {
		lpns = append(lpns, p)
	}
	return lpns
}

// Submit implements device.Device.
func (s *SSD) Submit(r *trace.IORequest, done device.Completion) {
	r.Issue = s.eng.Now()
	s.outstanding++
	wrapped := func(req *trace.IORequest) {
		s.outstanding--
		s.Metrics().Observe(req)
		if done != nil {
			done(req)
		}
	}
	if r.Err != nil {
		// Pre-marked failure (fault injection): the request pays the host
		// stack overhead and PCIe link occupancy before reporting the error,
		// but never touches the write buffer or flash.
		ov := WriteOverhead
		if r.Op == trace.OpRead {
			ov = ReadOverhead
		}
		s.eng.Schedule(ov, func() {
			s.acquireLink(r.Size, func() { s.complete(r, wrapped) })
		})
		return
	}
	if r.Op == trace.OpRead {
		s.read(r, wrapped)
	} else {
		s.write(r, wrapped)
	}
}

func (s *SSD) complete(r *trace.IORequest, done device.Completion) {
	r.Complete = s.eng.Now()
	done(r)
}

// read: overhead + flash reads (buffer-resident pages are free) + link
// transfer out.
func (s *SSD) read(r *trace.IORequest, done device.Completion) {
	s.eng.Schedule(ReadOverhead, func() {
		lpns := s.pagesOf(r)
		remaining := len(lpns)
		pageDone := func() {
			remaining--
			if remaining == 0 {
				s.acquireLink(r.Size, func() { s.complete(r, done) })
			}
		}
		for _, lpn := range lpns {
			if s.bufferResident[lpn] > 0 {
				pageDone()
				continue
			}
			s.ftl.Read(lpn, pageDone)
		}
	})
}

// write: overhead + link transfer in + buffer ack; pages flush to flash
// asynchronously with backpressure.
func (s *SSD) write(r *trace.IORequest, done device.Completion) {
	s.eng.Schedule(WriteOverhead, func() {
		s.acquireLink(r.Size, func() { s.bufferAck(r, done) })
	})
}

func (s *SSD) bufferAck(r *trace.IORequest, done device.Completion) {
	if s.pendingFlush >= s.cfg.MaxPendingFlush {
		s.stalls = append(s.stalls, func() { s.bufferAck(r, done) })
		return
	}
	for _, lpn := range s.pagesOf(r) {
		lpn := lpn
		s.bufferResident[lpn]++
		s.pendingFlush++
		s.ftl.Write(lpn, func() {
			s.pendingFlush--
			s.bufferResident[lpn]--
			if s.bufferResident[lpn] <= 0 {
				delete(s.bufferResident, lpn)
			}
			s.drainStalls()
		})
	}
	s.complete(r, done)
}

func (s *SSD) drainStalls() {
	for len(s.stalls) > 0 && s.pendingFlush < s.cfg.MaxPendingFlush {
		fn := s.stalls[0]
		s.stalls = s.stalls[:copy(s.stalls, s.stalls[1:])]
		fn()
	}
}
