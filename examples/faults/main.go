// Faults: deterministic fault injection driving failure-aware management.
// A mid-run error burst degrades node0's NVDIMM; the manager detects the
// error rate, quarantines the store, evacuates its VMDKs to healthy
// devices, and — after the burst ends and probation passes — readmits it.
// The whole arc is reproducible: rerunning with the same seed and spec
// yields identical fault counts and identical decisions.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mgmt"
	"repro/internal/sim"
)

func run() (*core.System, error) {
	cfg := mgmt.DefaultConfig()
	cfg.Window = 10 * sim.Millisecond
	cfg.MinWindowRequests = 2
	cfg.QuarantineMinErrors = 3
	cfg.ProbationWindows = 3
	sys, err := core.NewSystem(core.Options{
		Scheme: mgmt.LightSRM(),
		Mgmt:   cfg,
		Apps:   []string{"bayes", "sort", "pagerank", "wordcount"},
		Seed:   7,
		// 90% of node0-nvdimm requests fail and the survivors run 6x
		// slower between 30ms and 130ms of simulated time; before and
		// after, the device is healthy.
		FaultSpec:        "dev=node0-nvdimm:errate=0.9@30ms..130ms,degrade=6@30ms..130ms",
		FootprintDivisor: 512,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Run(400 * sim.Millisecond); err != nil {
		return nil, err
	}
	return sys, nil
}

func main() {
	sys, err := run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("injector: %s\n", sys.Injector.Stats())
	st := sys.Manager.Stats()
	fmt.Printf("manager:  %d quarantines, %d evacuations, %d readmissions, %d copy retries, %d aborts\n\n",
		st.Quarantines, st.Evacuations, st.Readmissions, st.CopyRetries, st.MigrationsAborted)

	fmt.Println("failure-related decisions:")
	for _, d := range sys.Manager.Log().Entries() {
		switch d.Kind {
		case mgmt.DecisionQuarantine, mgmt.DecisionEvacuate,
			mgmt.DecisionReadmit, mgmt.DecisionAbort:
			fmt.Printf("  %s\n", d)
		}
	}

	// Determinism: the identical configuration reproduces the identical
	// fault history, decision for decision.
	again, err := run()
	if err != nil {
		log.Fatal(err)
	}
	if sys.Injector.Stats().String() != again.Injector.Stats().String() ||
		sys.Manager.Stats() != again.Manager.Stats() {
		log.Fatal("same seed and spec diverged — determinism broken")
	}
	fmt.Println("\nrerun with same seed+spec: identical fault and decision counters")
}
