// Loadbalance: the Fig. 12 scenario in miniature. The same workload mix
// runs under BASIL (measured-latency balancing) and under the paper's
// bus-contention-aware scheme while a memory-intensive co-runner pollutes
// the NVDIMM's measured latency. BASIL chases the contention phantom and
// ping-pongs VMDKs; BCA strips contention with the model and stays put.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("training the NVDIMM performance model...")
	model, err := repro.TrainModel(1)
	if err != nil {
		log.Fatal(err)
	}

	run := func(scheme repro.Scheme) repro.Report {
		cfg := repro.ManagerConfig{}
		// Zero config selects defaults; tighten the window so co-runner
		// phases are visible to the decision loop.
		cfg.Window = 10 * repro.Millisecond
		cfg.MinWindowRequests = 3
		cfg.MinResidenceWindows = 4
		cfg.DebounceWindows = 2
		cfg.MaxConcurrentMigrations = 2
		cfg.CopyDepth = 8

		sys, err := repro.NewSystem(repro.Options{
			Scheme:           scheme,
			Mgmt:             cfg,
			MemProfile:       "429.mcf",
			MemScale:         4, // multi-core-class interference
			MemPhasePeriod:   80 * repro.Millisecond,
			Model:            model,
			FootprintDivisor: 1024,
			NoHDDPlacement:   true,
			Seed:             31,
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.Run(400 * repro.Millisecond)
		return sys.Report()
	}

	// The BCA arm is built from a policy spec rather than the canonical
	// constructor — same composition, demonstrating the textual surface.
	bcaScheme, err := repro.ParsePolicy("name=BCA,est=predicted")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running BASIL (measured-latency balancing)...")
	fmt.Printf("  pipeline: %s\n", repro.SchemeBASIL().Describe())
	basil := run(repro.SchemeBASIL())
	fmt.Println("running BCA (model-predicted NVDIMM latency)...")
	fmt.Printf("  pipeline: %s\n", bcaScheme.Describe())
	bca := run(bcaScheme)

	fmt.Printf("\n%-8s %12s %12s %12s %12s\n", "scheme", "migrations", "ping-pongs", "copied", "mean lat")
	for _, r := range []repro.Report{basil, bca} {
		fmt.Printf("%-8s %12d %12d %10dMB %10.0fus\n",
			r.Scheme, r.Migration.MigrationsStarted, r.Migration.PingPongs,
			r.Migration.BytesCopied>>20, r.MeanLatencyUS)
	}
	saved := basil.Migration.BytesCopied - bca.Migration.BytesCopied
	fmt.Printf("\nBCA avoided %d MB of unnecessary migration traffic.\n", saved>>20)
}
