// Quickstart: build a single server node with an NVDIMM + SSD + HDD
// hierarchy, run the eight big-data workloads alongside a memory-hungry
// co-runner, and print what the storage manager saw and did.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	// A BCA+Lazy system needs the §4 performance model; train it once
	// (a few seconds) — it is reusable across systems.
	fmt.Println("training the NVDIMM performance model...")
	model, err := repro.TrainModel(1)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := repro.NewSystem(repro.Options{
		Scheme:     repro.SchemeBCALazy(), // bus-contention-aware + lazy migration
		MemProfile: "429.mcf",             // memory-intensive co-runner (Table 5)
		Model:      model,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running 500ms of simulated time...")
	sys.Run(500 * repro.Millisecond)

	rep := sys.Report()
	fmt.Printf("\nscheme: %s\n", rep.Scheme)
	fmt.Println("device mean latencies:")
	names := make([]string, 0, len(rep.DeviceMeanUS))
	for name := range rep.DeviceMeanUS {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-16s %9.1f us (normalized %.3f)\n", name, rep.DeviceMeanUS[name], rep.NormalizedLatency[name])
	}
	fmt.Printf("mean workload throughput: %.0f IOPS\n", rep.MeanIOPS)
	fmt.Printf("bus contention absorbed by NVDIMM requests: %.1f ms\n", rep.NVDIMMContentionUS/1000)
	fmt.Printf("migrations: %d started, %d ping-pongs, %d MB copied, %d MB mirrored\n",
		rep.Migration.MigrationsStarted, rep.Migration.PingPongs,
		rep.Migration.BytesCopied>>20, rep.Migration.BytesMirrored>>20)

	// Per-window time series: the manager's view each epoch.
	fmt.Println("\nfirst management windows (measured vs predicted NVDIMM latency):")
	for i, w := range sys.Samples() {
		if i >= 5 {
			break
		}
		fmt.Printf("  t=%-10v measured=%8.1fus predicted=%8.1fus contention=%8.1fus\n",
			w.At, w.NVDIMMLatencyUS, w.PredictedUS, sys.ContentionOf(w))
	}
}
