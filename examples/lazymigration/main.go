// Lazymigration: the §5.2 mechanism up close. A write-heavy VMDK sits on
// an overloaded HDD; we migrate it eagerly (full copy) and lazily (I/O
// mirroring + cost/benefit-gated background copy) and compare how much
// data actually crossed, where the writes landed, and what the workload's
// latency looked like meanwhile.
package main

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/hdd"
	"repro/internal/mgmt"
	"repro/internal/nvdimm"
	"repro/internal/sim"
	"repro/internal/workload"
)

func run(scheme mgmt.Scheme) (st mgmt.Stats, meanLat sim.Time) {
	eng := sim.NewEngine()
	ch := bus.NewChannel(eng, 0)
	nv := nvdimm.New(eng, ch, core.ScaledNVDIMMConfig("nvdimm"))
	hd := hdd.New(eng, core.ScaledHDDConfig("hdd", 1))
	stores := []*mgmt.Datastore{
		mgmt.NewDatastore(nv, 0),
		mgmt.NewDatastore(hd, 0),
	}
	cfg := mgmt.DefaultConfig()
	cfg.Window = 20 * sim.Millisecond
	cfg.MinWindowRequests = 3
	cfg.CopyDepth = 2 // a deliberately leisurely copy engine
	mgr := mgmt.NewManager(eng, cfg, scheme, stores)
	mgr.Log().SetCapacity(16)

	// A write-heavy virtual disk stuck on the HDD.
	v, err := stores[1].CreateVMDK(1, 32<<20)
	if err != nil {
		panic(err)
	}
	p := workload.Profile{Name: "writer", WriteRatio: 0.9, ReadRand: 0.3, WriteRand: 0.3,
		IOSize: 64 << 10, OIO: 8, Footprint: 32 << 20, ThinkTime: 500 * sim.Microsecond}
	r := workload.NewRunner(eng, sim.NewRNG(3), p, v, 0)
	r.Start()
	mgr.Start()
	eng.RunFor(1200 * sim.Millisecond)
	r.Stop()
	mgr.Stop()
	eng.RunFor(100 * sim.Millisecond)
	return mgr.Stats(), r.MeanLatency()
}

func main() {
	fmt.Println("A 32MB write-heavy VMDK lives on a busy HDD; the manager moves it")
	fmt.Println("to the NVDIMM. How much data actually needs copying?")

	eager, eagerLat := run(mgmt.BCA()) // eager: full copy, no mirroring
	lazy, lazyLat := run(mgmt.BCALazy())

	fmt.Printf("\n%-28s %10s %10s %12s\n", "", "copied", "mirrored", "workload lat")
	fmt.Printf("%-28s %8dMB %8dMB %12v\n", "eager full copy:",
		eager.BytesCopied>>20, eager.BytesMirrored>>20, eagerLat)
	fmt.Printf("%-28s %8dMB %8dMB %12v\n", "mirroring + cost/benefit:",
		lazy.BytesCopied>>20, lazy.BytesMirrored>>20, lazyLat)

	saved := eager.BytesCopied - lazy.BytesCopied
	fmt.Printf("\nI/O mirroring let %d MB of blocks reach the destination as ordinary\n", saved>>20)
	fmt.Println("workload writes — the copy engine skipped them (per-block bitmap, §5.2),")
	fmt.Println("and the cost/benefit gate paused copying whenever it wasn't worth it.")
}
