// Archopt: the §5.3 architectural optimizations in isolation. One NVDIMM
// serves a persistent-store application (writes with ordering barriers)
// while a VMDK migration streams through it. We compare the
// barrier-respecting baseline scheduler against Policy One / Policy Two /
// both (Fig. 14), and show what cache bypassing does to the buffer-cache
// hit ratio during a migration read storm (Fig. 15).
package main

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/memsched"
	"repro/internal/mgmt"
	"repro/internal/nvdimm"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// migClass is the traffic class migration I/O carries under the full
// scheme — taken from its execute stage, the same place the manager's
// migration engine gets it, so this example stays honest if the tagging
// policy ever changes.
var migClass = mgmt.Full().Executor.Class()

// runScheduling measures application IOPS on a migration-loaded NVDIMM
// under the given transaction-queue policy.
func runScheduling(pol memsched.Policy) float64 {
	eng := sim.NewEngine()
	ch := bus.NewChannel(eng, 0)
	cfg := core.ScaledNVDIMMConfig("nv")
	cfg.Sched = pol
	cfg.WriteThrough = true // persistent store: barriers bind write latency
	cfg.SchedSlots = 8
	cfg.CacheBlocks = 256
	cfg.MaxPendingFlush = 64
	n := nvdimm.New(eng, ch, cfg)

	p, _ := workload.AppProfile("kmeans")
	p.Footprint = 8 << 20
	p.IOSize = 4096
	p.Persistent = true
	p.BarrierEvery = 2
	p.ThinkTime = 0
	r := workload.NewRunner(eng, sim.NewRNG(5), p, n, 0)
	r.Start()

	// Migration writes arrive in 64 KB chunks (16 pages): under the
	// baseline the epoch holding a chunk needs several flash program
	// rounds; Policy One moves the chunk into barrier-idle slots.
	off := int64(64 << 20)
	var wstream func()
	wstream = func() {
		n.Submit(&trace.IORequest{Op: trace.OpWrite, Offset: off, Size: 64 << 10, Class: migClass},
			func(*trace.IORequest) { eng.After(2*sim.Millisecond, wstream) })
		off += 64 << 10
	}
	wstream()
	// Source-side migration reads share the flash array too.
	roff := int64(128 << 20)
	var rstream func()
	rstream = func() {
		n.Submit(&trace.IORequest{Op: trace.OpRead, Offset: roff, Size: 64 << 10, Class: migClass},
			func(*trace.IORequest) { eng.After(100*sim.Microsecond, rstream) })
		roff += 64 << 10
	}
	rstream()

	eng.RunFor(20 * sim.Millisecond) // warm
	before := r.Completed()
	eng.RunFor(40 * sim.Millisecond)
	return float64(r.Completed()-before) / (40 * sim.Millisecond).Seconds()
}

// runBypass measures the buffer-cache hit ratio during a migration read
// storm, with or without §5.3.2 bypassing.
func runBypass(bypass bool) float64 {
	eng := sim.NewEngine()
	ch := bus.NewChannel(eng, 0)
	cfg := core.ScaledNVDIMMConfig("nv")
	cfg.BypassMigratedReads = bypass
	cfg.CacheBlocks = 256
	n := nvdimm.New(eng, ch, cfg)

	p := workload.Profile{Name: "hot", WriteRatio: 0.2, ReadRand: 0.8, WriteRand: 0.8,
		IOSize: 4096, OIO: 4, Footprint: 1 << 20, ThinkTime: 20 * sim.Microsecond}
	r := workload.NewRunner(eng, sim.NewRNG(3), p, n, 0)
	r.Start()
	eng.RunFor(10 * sim.Millisecond) // warm the cache

	off := int64(32 << 20)
	var scan func()
	scan = func() {
		n.Submit(&trace.IORequest{Op: trace.OpRead, Offset: off, Size: 64 << 10, Class: migClass},
			func(*trace.IORequest) { scan() })
		off += 64 << 10
	}
	for k := 0; k < 4; k++ {
		scan()
	}
	st := n.Cache().Stats()
	st.ResetWindow()
	eng.RunFor(40 * sim.Millisecond)
	return st.WindowHitRatio()
}

func main() {
	fmt.Println("=== migration-aware scheduling (Fig. 14 scenario) ===")
	base := runScheduling(memsched.Baseline())
	fmt.Printf("baseline (barrier-bound FCFS): %8.0f app IOPS\n", base)
	for _, c := range []struct {
		name string
		pol  memsched.Policy
	}{
		{"Policy One (migrated ignore barriers)", memsched.PolicyOne()},
		{"Policy Two (persistent prioritized)", memsched.PolicyTwo()},
		{"both + non-persistent barrier", memsched.Combined(2 * sim.Millisecond)},
	} {
		got := runScheduling(c.pol)
		fmt.Printf("%-40s %8.0f app IOPS (%.2fx)\n", c.name+":", got, got/base)
	}

	fmt.Println("\n=== buffer-cache bypassing (Fig. 15 scenario) ===")
	polluted := runBypass(false)
	preserved := runBypass(true)
	fmt.Printf("hit ratio during migration storm, LRFU only: %5.1f%%\n", polluted*100)
	fmt.Printf("hit ratio during migration storm, bypassing: %5.1f%%\n", preserved*100)
}
