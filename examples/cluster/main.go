// Cluster: the multi-node environment of §6.1 — three server nodes, each
// with its own NVDIMM + SSD + HDD and DRAM channels, joined by modeled
// Ethernet links. One node's HDD is overloaded; the manager balances
// across nodes and the migration data pays real network transfer time.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	fmt.Println("training the NVDIMM performance model...")
	model, err := repro.TrainModel(1)
	if err != nil {
		log.Fatal(err)
	}

	cfg := repro.ManagerConfig{}
	cfg.Window = 20 * repro.Millisecond
	cfg.MinWindowRequests = 3
	cfg.MaxConcurrentMigrations = 3
	cfg.CopyDepth = 8
	sys, err := repro.NewSystem(repro.Options{
		Nodes:            3,
		Scheme:           repro.SchemeBCALazy(),
		Mgmt:             cfg,
		MemProfile:       "429.mcf",
		Model:            model,
		FootprintDivisor: 1024, // small VMDKs migrate within the run
		Seed:             5,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Watch the manager's reasoning.
	sys.Manager.Log().SetCapacity(32)

	fmt.Println("running 3 nodes for 600ms of simulated time...")
	sys.Run(600 * repro.Millisecond)

	rep := sys.Report()
	fmt.Println("\nper-device mean latency:")
	names := make([]string, 0, len(rep.DeviceMeanUS))
	for n := range rep.DeviceMeanUS {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-16s %10.1f us\n", n, rep.DeviceMeanUS[n])
	}
	fmt.Printf("\nmigrations: %d started, %d completed\n",
		rep.Migration.MigrationsStarted, rep.Migration.MigrationsCompleted)
	fmt.Printf("cross-node migration traffic: %d MB over the Ethernet links\n",
		rep.NetworkBytes>>20)

	fmt.Println("\nmanager decision log:")
	for _, d := range sys.Manager.Log().Entries() {
		fmt.Println(" ", d)
	}
}
