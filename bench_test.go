// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at Quick
// scale and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation sweep. cmd/experiments prints the full
// rows/series at report scale.
package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/lint"
	"repro/internal/mgmt"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

var (
	benchModelOnce sync.Once
	benchModel     *perfmodel.Model
	benchModelErr  error
)

func benchSharedModel(b *testing.B) *perfmodel.Model {
	b.Helper()
	benchModelOnce.Do(func() {
		benchModel, benchModelErr = TrainModel(99)
	})
	if benchModelErr != nil {
		b.Fatalf("model training: %v", benchModelErr)
	}
	return benchModel
}

// BenchmarkTable1DeviceSpecs regenerates the Table 1 device comparison.
func BenchmarkTable1DeviceSpecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if len(r.Rows) != 5 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkTable2MigrationOverhead regenerates Table 2 (migration
// overhead with vs without memory interference) and reports BASIL's
// single-node interference-attributable share.
func BenchmarkTable2MigrationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Scheme == "BASIL" && row.Environment == "Single node" {
				b.ReportMetric(row.Overhead*100, "basil_overhead_%")
			}
		}
	}
}

// BenchmarkTable3RegressionTree regenerates the Table 3 / Fig. 6 tree
// construction example.
func BenchmarkTable3RegressionTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if r.RootName != "free_space_ratio" {
			b.Fatalf("root split = %s", r.RootName)
		}
	}
}

// BenchmarkFig4MemoryTrafficEffect regenerates Fig. 4 and reports the
// latency/intensity correlation.
func BenchmarkFig4MemoryTrafficEffect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Correlation, "corr")
	}
}

// BenchmarkFig5DeviceCharacteristics regenerates the Fig. 5 sweeps and
// reports the HDD randomness slope (p100/p0).
func BenchmarkFig5DeviceCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(experiments.Quick())
		if r.HDDByRand[0] > 0 {
			b.ReportMetric(r.HDDByRand[len(r.HDDByRand)-1]/r.HDDByRand[0], "hdd_rand_slope")
		}
	}
}

// BenchmarkFig7ModelVerification regenerates Fig. 7(a) and reports model
// error versus the quiet curve (the paper reports ~5%).
func BenchmarkFig7ModelVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(1.0, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ModelErr*100, "model_err_%")
		b.ReportMetric(r.ContentionGap*100, "contention_gap_%")
	}
}

// BenchmarkFig7LowFreeSpace regenerates Fig. 7(b) (10% free space).
func BenchmarkFig7LowFreeSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(0.1, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ModelErr*100, "model_err_%")
	}
}

// BenchmarkFig12BCAManagement regenerates Fig. 12 and reports BCA's
// latency improvement over BASIL on the mcf single-node mix.
func BenchmarkFig12BCAManagement(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mixes[0].BCAImprovement["BASIL"]*100, "bca_vs_basil_%")
	}
}

// BenchmarkFig13LazyMigration regenerates Fig. 13 and reports the lazy
// scheme's migration time normalized to BASIL (single node).
func BenchmarkFig13LazyMigration(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Nodes == 1 && row.Scheme == "BCA+Lazy" {
				b.ReportMetric(row.Normalized, "lazy_vs_basil")
			}
		}
	}
}

// BenchmarkFig14SchedulingPolicies regenerates Fig. 14 and reports the
// average speedups of Policy One, Policy Two, and both.
func BenchmarkFig14SchedulingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14(experiments.Quick())
		b.ReportMetric(r.AvgP1, "p1_speedup")
		b.ReportMetric(r.AvgP2, "p2_speedup")
		b.ReportMetric(r.AvgBoth, "both_speedup")
	}
}

// BenchmarkFig15CacheBypass regenerates Fig. 15 and reports the final
// hit ratios with and without bypassing.
func BenchmarkFig15CacheBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15(experiments.Quick())
		b.ReportMetric(r.FinalLRFU()*100, "lrfu_hit_%")
		b.ReportMetric(r.FinalBypass()*100, "bypass_hit_%")
	}
}

// BenchmarkFig16ArchCombined regenerates Fig. 16 and reports the combined
// architectural speedup.
func BenchmarkFig16ArchCombined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16(experiments.Quick())
		b.ReportMetric(r.Avg, "avg_speedup")
		b.ReportMetric(r.Max, "max_speedup")
	}
}

// BenchmarkFig17PuttingItAllTogether regenerates Fig. 17 and reports the
// full design's latency speedup over BASIL.
func BenchmarkFig17PuttingItAllTogether(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Scheme == "BCA+Lazy+Arch" {
				b.ReportMetric(row.Speedup, "full_vs_basil")
			}
		}
	}
}

// BenchmarkTauSweep regenerates the §6.2.1 τ sensitivity sweep and
// reports the migration count at the extremes.
func BenchmarkTauSweep(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.TauSweep(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].Migrations), "migs_tau_0.2")
		b.ReportMetric(float64(r.Rows[len(r.Rows)-1].Migrations), "migs_tau_0.8")
	}
}

// BenchmarkModelTraining measures §4 training cost (data collection plus
// regression-tree fitting) for the scaled NVDIMM.
func BenchmarkModelTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := TrainModel(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModels compares tree / linear / aggregation predictors
// on held-out quiet measurements (§4.4 model choice).
func BenchmarkAblationModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ModelAblation(experiments.Quick(), uint64(i)+5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TreeMAE, "tree_mae_us")
		b.ReportMetric(r.AggregationMAE, "agg_mae_us")
	}
}

// BenchmarkAblationLambda sweeps the LRFU λ under migration pollution.
func BenchmarkAblationLambda(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.LambdaAblation(experiments.Quick())
		b.ReportMetric(r.HitRatios[0]*100, "lfu_like_hit_%")
		b.ReportMetric(r.LRU*100, "lru_hit_%")
	}
}

// BenchmarkAblationNPB isolates the non-persistent barrier's effect on
// migrated-write starvation (Fig. 10).
func BenchmarkAblationNPB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NPBAblation()
		b.ReportMetric(r.WithoutNPBWaitUS, "no_npb_wait_us")
		b.ReportMetric(r.WithNPBWaitUS, "npb_wait_us")
	}
}

// BenchmarkAblationMirroring isolates I/O mirroring inside lazy
// migration.
func BenchmarkAblationMirroring(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.MirroringAblation(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.WithMirroring.BytesCopied>>20), "mirror_copied_MB")
		b.ReportMetric(float64(r.WithoutMirroring.BytesCopied>>20), "eager_copied_MB")
	}
}

// BenchmarkExtensionDAX measures the DAX access-path study (the paper's
// concluding outlook).
func BenchmarkExtensionDAX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.DAXStudy(experiments.Quick())
		b.ReportMetric(r.Speedups[0], "dax_256B_speedup")
	}
}

// BenchmarkPlacementStudy measures the §5.1.1 initial-placement
// comparison under interference.
func BenchmarkPlacementStudy(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.PlacementStudy(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BASILNVDIMMRate*100, "basil_nvdimm_%")
		b.ReportMetric(r.BCANVDIMMRate*100, "bca_nvdimm_%")
	}
}

// BenchmarkFig9Schedule regenerates the Fig. 9/10 schedule example and
// reports the Policy One makespan gain.
func BenchmarkFig9Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(experiments.Quick())
		base := r.Makespan("baseline")
		p1 := r.Makespan("Policy One")
		if p1 > 0 {
			b.ReportMetric(float64(base)/float64(p1), "p1_makespan_gain")
		}
	}
}

// benchEngineRecord is the schema of BENCH_engine.json: the raw cost of
// the discrete-event hot path (At/Step through a self-rescheduling timer
// wheel), with the engine's own profiling counters enabled so the record
// reflects the instrumented path that real runs with profiling pay.
type benchEngineRecord struct {
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Timers        int     `json:"timers"`
	Events        uint64  `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	NsPerEvent    float64 `json:"ns_per_event"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	HeapPushes    uint64  `json:"heap_pushes"`
	HeapPops      uint64  `json:"heap_pops"`
	MaxTimerDepth int     `json:"max_timer_depth"`
	// Wheel-level cost counters (engine v2, DESIGN.md §15): how often the
	// hierarchical wheel redistributed entries downward and how many
	// events entered via the beyond-horizon overflow tier.
	Cascades           uint64 `json:"cascades"`
	OverflowPromotions uint64 `json:"overflow_promotions"`
}

// BenchmarkEngineHotPath measures the event loop itself: a wheel of
// self-rescheduling timers with coprime periods (so the dispatch order
// churns) dispatched through Engine.Step. One benchmark op is one
// dispatched event. Events/sec, ns/event, and allocs/op land in
// BENCH_engine.json so engine-throughput work (ROADMAP) has a tracked
// baseline; CI asserts allocs_per_op stays 0 (pooled timers, steady
// state) and that the wheel counters are present.
func BenchmarkEngineHotPath(b *testing.B) {
	const nTimers = 64
	eng := sim.NewEngine()
	// Coprime-ish periods spread events across the wheel instead of
	// batching them at one timestamp.
	for i := 0; i < nTimers; i++ {
		period := sim.Time(97+13*i) * sim.Microsecond
		var tick func()
		tick = func() { eng.Schedule(period, tick) }
		eng.Schedule(sim.Time(i)*sim.Microsecond, tick)
	}
	// Warm-up: let the timer pool and dispatch buffer reach steady state
	// so the measured window reflects the 0-alloc hot path, not one-time
	// slice growth.
	for i := 0; i < 10_000; i++ {
		if !eng.Step() {
			b.Fatal("engine drained during warm-up")
		}
	}
	eng.EnableProfiling()
	var ms0, ms1 runtime.MemStats
	b.ResetTimer()
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.Fatal("engine drained: self-rescheduling timers died")
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	b.StopTimer()
	prof := eng.Profile()
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	perSec := 0.0
	if wall > 0 {
		perSec = float64(b.N) / wall.Seconds()
	}
	b.ReportMetric(perSec, "events/sec")
	b.ReportMetric(allocs, "allocs/event")
	rec := benchEngineRecord{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Timers:             nTimers,
		Events:             prof.Events,
		EventsPerSec:       perSec,
		NsPerEvent:         float64(wall.Nanoseconds()) / float64(b.N),
		AllocsPerOp:        allocs,
		HeapPushes:         prof.HeapPushes,
		HeapPops:           prof.HeapPops,
		MaxTimerDepth:      prof.MaxDepth,
		Cascades:           prof.Cascades,
		OverflowPromotions: prof.OverflowPromotions,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchMgmtRow is one cell of the BENCH_mgmt.json scale matrix: one
// (fleet scale, pipeline mode) pair. Mode is "incremental" (the default
// dirty-set pipeline) or "fullsweep" (Config.FullSweep reference).
type benchMgmtRow struct {
	Scale       int    `json:"scale"` // fleet multiplier: 1, 10, 100
	Mode        string `json:"mode"`
	Nodes       int    `json:"nodes"`
	Stores      int    `json:"stores"`
	VMDKs       int    `json:"vmdks"`
	ActiveVMDKs int    `json:"active_vmdks"` // runners issuing I/O (fixed across scales)
	Iterations  int    `json:"iterations"`
	// WindowWallUS is the mean wall-clock cost of simulating one
	// management window: one epoch of the observe → plan → execute
	// pipeline plus the foreground I/O that populates its windows.
	WindowWallUS float64 `json:"window_wall_us"`
	Migrations   int64   `json:"migrations_started"`
}

// benchMgmtFile is the schema of BENCH_mgmt.json: shared run parameters
// plus the scale-matrix records (docs/BENCH.md documents every field).
type benchMgmtFile struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scheme     string         `json:"scheme"`
	WindowUS   float64        `json:"window_us"` // simulated window length
	Claim      string         `json:"claim"`
	Records    []benchMgmtRow `json:"records"`
}

const benchMgmtClaim = "with a fixed active set (32 runners), incremental " +
	"epoch cost tracks activity, not fleet size: window_wall_us grows " +
	"sublinearly in scale, while fullsweep pays O(stores + vmdks) per epoch"

// benchMgmtRows accumulates cells across the BenchmarkManagerEpochScale
// sub-benchmarks; keyed by scale/mode so go test's calibration reruns
// overwrite instead of duplicating.
var (
	benchMgmtMu   sync.Mutex
	benchMgmtRows = map[string]benchMgmtRow{}
)

// benchMgmtScales defines the matrix: 1× is the single-node baseline the
// old BenchmarkManagerEpoch measured; 10× and 100× grow the fleet and
// the VMDK population while the active set stays 32 runners, which is
// exactly the shape the incremental pipeline is for.
var benchMgmtScales = []struct {
	scale, nodes, vmdks int
	vmdkSize            int64
}{
	{1, 1, 32, 4 << 20},
	{10, 10, 320, 4 << 20},
	{100, 34, 10000, 1 << 20},
}

// writeBenchMgmt rewrites BENCH_mgmt.json from the accumulated cells and
// enforces the scaling claim once both incremental endpoints are in: the
// 100× incremental cell must cost less than 20× the 1× cell (a 100×
// fleet with the same activity; the generous factor absorbs timer noise
// while still failing on any return to per-epoch full sweeps).
func writeBenchMgmt(b *testing.B) {
	b.Helper()
	rows := make([]benchMgmtRow, 0, len(benchMgmtRows))
	for _, r := range benchMgmtRows {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Scale != rows[j].Scale {
			return rows[i].Scale < rows[j].Scale
		}
		return rows[i].Mode < rows[j].Mode
	})
	out := benchMgmtFile{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scheme:     mgmt.Full().Name,
		WindowUS:   sim.Millisecond.Seconds() * 1e6,
		Claim:      benchMgmtClaim,
		Records:    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_mgmt.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	inc1, ok1 := benchMgmtRows["1/incremental"]
	inc100, ok100 := benchMgmtRows["100/incremental"]
	if ok1 && ok100 && inc100.WindowWallUS > 20*inc1.WindowWallUS {
		b.Errorf("scaling claim violated: incremental window cost grew %.1f× over a 100× fleet (1×: %.0fµs, 100×: %.0fµs)",
			inc100.WindowWallUS/inc1.WindowWallUS, inc1.WindowWallUS, inc100.WindowWallUS)
	}
}

// BenchmarkManagerEpochScale times the management loop's hot path across
// fleet scales: N nodes of three datastores each (NVDIMM, SSD, HDD), the
// full scheme (contention-aware estimation, redirection, tagging), and a
// fixed 32-runner foreground so activity is constant while the fleet
// grows 1× → 10× → 100×. One benchmark iteration advances the simulation
// by exactly one management window — one epoch. Each scale runs both the
// default incremental pipeline and the Config.FullSweep reference; the
// cells land in BENCH_mgmt.json with the complexity claim, and the
// benchmark itself fails if the incremental 100× cell stops being
// sublinear in fleet size.
func BenchmarkManagerEpochScale(b *testing.B) {
	const nActive = 32
	model := benchSharedModel(b)
	for _, sc := range benchMgmtScales {
		for _, mode := range []string{"incremental", "fullsweep"} {
			sc, mode := sc, mode
			b.Run(fmt.Sprintf("scale%dx/%s", sc.scale, mode), func(b *testing.B) {
				c := cluster.New()
				for n := 0; n < sc.nodes; n++ {
					if _, err := c.AddNode(cluster.NodeConfig{
						Name:     fmt.Sprintf("bench%d", n),
						Channels: 4,
						NVDIMM:   core.ScaledNVDIMMConfig(fmt.Sprintf("nv%d", n)),
						SSD:      core.ScaledSSDConfig(fmt.Sprintf("ssd%d", n)),
						HDD:      core.ScaledHDDConfig(fmt.Sprintf("hdd%d", n), uint64(7+n)),
					}, sim.NewRNG(uint64(7+n))); err != nil {
						b.Fatal(err)
					}
				}
				stores := c.AllStores()
				cfg := mgmt.DefaultConfig()
				cfg.Window = sim.Millisecond
				cfg.MinWindowRequests = 1
				cfg.FullSweep = mode == "fullsweep"
				mgr := mgmt.NewManager(c.Eng, cfg, mgmt.Full(), stores)
				mgr.SetModel(device.KindNVDIMM, model)
				p := workload.Profile{Name: "bench", WriteRatio: 0.3, ReadRand: 0.5, WriteRand: 0.5,
					IOSize: 4096, OIO: 1, Footprint: sc.vmdkSize, ThinkTime: 100 * sim.Microsecond}
				// Round-robin placement spreads VMDKs — and the first
				// nActive runners — across the whole fleet.
				for i := 0; i < sc.vmdks; i++ {
					v, err := stores[i%len(stores)].CreateVMDK(i+1, sc.vmdkSize)
					if err != nil {
						b.Fatal(err)
					}
					if i < nActive {
						workload.NewRunner(c.Eng, sim.NewRNG(uint64(i)+1), p, v, i).Start()
					}
				}
				mgr.Start()
				if err := c.Eng.RunFor(2 * cfg.Window); err != nil { // warm the windows
					b.Fatal(err)
				}
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if err := c.Eng.RunFor(cfg.Window); err != nil {
						b.Fatal(err)
					}
				}
				wall := time.Since(start)
				b.StopTimer()
				b.ReportMetric(wall.Seconds()*1e6/float64(b.N), "window_wall_us/op")
				benchMgmtMu.Lock()
				defer benchMgmtMu.Unlock()
				benchMgmtRows[fmt.Sprintf("%d/%s", sc.scale, mode)] = benchMgmtRow{
					Scale:        sc.scale,
					Mode:         mode,
					Nodes:        sc.nodes,
					Stores:       len(stores),
					VMDKs:        sc.vmdks,
					ActiveVMDKs:  nActive,
					Iterations:   b.N,
					WindowWallUS: wall.Seconds() * 1e6 / float64(b.N),
					Migrations:   int64(mgr.Stats().MigrationsStarted),
				}
				writeBenchMgmt(b)
			})
		}
	}
}

// benchParallelCells is the slice of the experiment matrix used to
// measure harness speedup: cells without model training, covering all
// three intra-cell fan-out shapes (fig5 sweep points, fig9 policy
// schedules, faults scenario systems) plus cells that only parallelize at
// the matrix level.
var benchParallelCells = []string{"table4", "fig5", "fig9", "fig14", "fig15", "dax", "faults"}

// benchParallelRecord is the schema of BENCH_parallel.json. Speedup is a
// pointer so a run that cannot measure parallelism (GOMAXPROCS=1: both
// schedules execute on one core and the ratio is pure noise) records an
// honest null plus a note instead of a fabricated ~1.0 "speedup".
type benchParallelRecord struct {
	Cells        []string `json:"cells"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	Iterations   int      `json:"iterations"`
	SequentialS  float64  `json:"sequential_s"` // mean wall time at -jobs 1
	ParallelS    float64  `json:"parallel_s"`   // mean wall time at -jobs GOMAXPROCS
	Speedup      *float64 `json:"speedup"`      // null when unmeasurable
	ParallelJobs int      `json:"parallel_jobs"`
	Note         string   `json:"note,omitempty"`
}

// BenchmarkExperimentsParallel times the same matrix slice under the
// sequential reference schedule (-jobs 1) and sharded across GOMAXPROCS
// workers, reports the speedup as a metric, and records both wall times
// in BENCH_parallel.json. The outputs are byte-identical between the two
// schedules (see TestMatrixParallelDeterminism in internal/experiments);
// this benchmark measures only the wall-clock gap.
func BenchmarkExperimentsParallel(b *testing.B) {
	run := func(jobs int) time.Duration {
		sc := experiments.Quick()
		sc.Jobs = jobs
		start := time.Now()
		res, err := experiments.RunMatrix(experiments.MatrixOptions{
			Names: benchParallelCells, Scale: sc,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Name, r.Err)
			}
		}
		return time.Since(start)
	}
	var seq, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq += run(1)
		par += run(0)
	}
	b.StopTimer()
	b.ReportMetric(seq.Seconds()/float64(b.N), "seq_s/op")
	b.ReportMetric(par.Seconds()/float64(b.N), "par_s/op")
	rec := benchParallelRecord{
		Cells:        benchParallelCells,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Iterations:   b.N,
		SequentialS:  seq.Seconds() / float64(b.N),
		ParallelS:    par.Seconds() / float64(b.N),
		ParallelJobs: runtime.GOMAXPROCS(0),
	}
	if rec.GOMAXPROCS > 1 && par > 0 {
		speedup := float64(seq) / float64(par)
		rec.Speedup = &speedup
		b.ReportMetric(speedup, "speedup")
	} else {
		rec.Note = "speedup not measurable at GOMAXPROCS=1; run with more cores to record it"
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchLintRecord is the BENCH_lint.json schema: the cost of one full
// hsmlint pass over the module (fresh parse + type-check every
// iteration; the per-module caches are deliberately not reused across
// iterations, matching a cold CI invocation).
type benchLintRecord struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Checks       int     `json:"checks"`
	Packages     int     `json:"packages"`
	Findings     int     `json:"findings"`
	Iterations   int     `json:"iterations"`
	MsPerRun     float64 `json:"ms_per_run"`
	NsPerPackage float64 `json:"ns_per_package"`
}

// BenchmarkHsmlint times the full lint suite — all nine checks,
// including the module-wide call-graph build — over this repository,
// and records the cost in BENCH_lint.json so linter growth is tracked
// like every other perf claim. One benchmark op is one complete run
// (module load, type check, graph, checks, suppression).
func BenchmarkHsmlint(b *testing.B) {
	m, err := lint.LoadModule(".")
	if err != nil {
		b.Fatal(err)
	}
	dirs, err := m.Dirs()
	if err != nil {
		b.Fatal(err)
	}
	if len(dirs) == 0 {
		b.Fatal("no packages to lint")
	}
	findings := 0
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		fs, err := lint.Run(".", dirs, nil)
		if err != nil {
			b.Fatal(err)
		}
		findings = len(fs)
	}
	wall := time.Since(start)
	b.StopTimer()
	if findings != 0 {
		b.Fatalf("repository not lint-clean: %d finding(s)", findings)
	}
	perRun := wall.Seconds() * 1e3 / float64(b.N)
	perPkg := float64(wall.Nanoseconds()) / float64(b.N) / float64(len(dirs))
	b.ReportMetric(perRun, "ms/run")
	b.ReportMetric(perPkg/1e6, "ms/package")
	rec := benchLintRecord{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Checks:       len(lint.Checks()),
		Packages:     len(dirs),
		Findings:     findings,
		Iterations:   b.N,
		MsPerRun:     perRun,
		NsPerPackage: perPkg,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_lint.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
