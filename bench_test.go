// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at Quick
// scale and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation sweep. cmd/experiments prints the full
// rows/series at report scale.
package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/mgmt"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

var (
	benchModelOnce sync.Once
	benchModel     *perfmodel.Model
	benchModelErr  error
)

func benchSharedModel(b *testing.B) *perfmodel.Model {
	b.Helper()
	benchModelOnce.Do(func() {
		benchModel, benchModelErr = TrainModel(99)
	})
	if benchModelErr != nil {
		b.Fatalf("model training: %v", benchModelErr)
	}
	return benchModel
}

// BenchmarkTable1DeviceSpecs regenerates the Table 1 device comparison.
func BenchmarkTable1DeviceSpecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if len(r.Rows) != 5 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkTable2MigrationOverhead regenerates Table 2 (migration
// overhead with vs without memory interference) and reports BASIL's
// single-node interference-attributable share.
func BenchmarkTable2MigrationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Scheme == "BASIL" && row.Environment == "Single node" {
				b.ReportMetric(row.Overhead*100, "basil_overhead_%")
			}
		}
	}
}

// BenchmarkTable3RegressionTree regenerates the Table 3 / Fig. 6 tree
// construction example.
func BenchmarkTable3RegressionTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if r.RootName != "free_space_ratio" {
			b.Fatalf("root split = %s", r.RootName)
		}
	}
}

// BenchmarkFig4MemoryTrafficEffect regenerates Fig. 4 and reports the
// latency/intensity correlation.
func BenchmarkFig4MemoryTrafficEffect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Correlation, "corr")
	}
}

// BenchmarkFig5DeviceCharacteristics regenerates the Fig. 5 sweeps and
// reports the HDD randomness slope (p100/p0).
func BenchmarkFig5DeviceCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(experiments.Quick())
		if r.HDDByRand[0] > 0 {
			b.ReportMetric(r.HDDByRand[len(r.HDDByRand)-1]/r.HDDByRand[0], "hdd_rand_slope")
		}
	}
}

// BenchmarkFig7ModelVerification regenerates Fig. 7(a) and reports model
// error versus the quiet curve (the paper reports ~5%).
func BenchmarkFig7ModelVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(1.0, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ModelErr*100, "model_err_%")
		b.ReportMetric(r.ContentionGap*100, "contention_gap_%")
	}
}

// BenchmarkFig7LowFreeSpace regenerates Fig. 7(b) (10% free space).
func BenchmarkFig7LowFreeSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(0.1, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ModelErr*100, "model_err_%")
	}
}

// BenchmarkFig12BCAManagement regenerates Fig. 12 and reports BCA's
// latency improvement over BASIL on the mcf single-node mix.
func BenchmarkFig12BCAManagement(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mixes[0].BCAImprovement["BASIL"]*100, "bca_vs_basil_%")
	}
}

// BenchmarkFig13LazyMigration regenerates Fig. 13 and reports the lazy
// scheme's migration time normalized to BASIL (single node).
func BenchmarkFig13LazyMigration(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Nodes == 1 && row.Scheme == "BCA+Lazy" {
				b.ReportMetric(row.Normalized, "lazy_vs_basil")
			}
		}
	}
}

// BenchmarkFig14SchedulingPolicies regenerates Fig. 14 and reports the
// average speedups of Policy One, Policy Two, and both.
func BenchmarkFig14SchedulingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14(experiments.Quick())
		b.ReportMetric(r.AvgP1, "p1_speedup")
		b.ReportMetric(r.AvgP2, "p2_speedup")
		b.ReportMetric(r.AvgBoth, "both_speedup")
	}
}

// BenchmarkFig15CacheBypass regenerates Fig. 15 and reports the final
// hit ratios with and without bypassing.
func BenchmarkFig15CacheBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15(experiments.Quick())
		b.ReportMetric(r.FinalLRFU()*100, "lrfu_hit_%")
		b.ReportMetric(r.FinalBypass()*100, "bypass_hit_%")
	}
}

// BenchmarkFig16ArchCombined regenerates Fig. 16 and reports the combined
// architectural speedup.
func BenchmarkFig16ArchCombined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16(experiments.Quick())
		b.ReportMetric(r.Avg, "avg_speedup")
		b.ReportMetric(r.Max, "max_speedup")
	}
}

// BenchmarkFig17PuttingItAllTogether regenerates Fig. 17 and reports the
// full design's latency speedup over BASIL.
func BenchmarkFig17PuttingItAllTogether(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Scheme == "BCA+Lazy+Arch" {
				b.ReportMetric(row.Speedup, "full_vs_basil")
			}
		}
	}
}

// BenchmarkTauSweep regenerates the §6.2.1 τ sensitivity sweep and
// reports the migration count at the extremes.
func BenchmarkTauSweep(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.TauSweep(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].Migrations), "migs_tau_0.2")
		b.ReportMetric(float64(r.Rows[len(r.Rows)-1].Migrations), "migs_tau_0.8")
	}
}

// BenchmarkModelTraining measures §4 training cost (data collection plus
// regression-tree fitting) for the scaled NVDIMM.
func BenchmarkModelTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := TrainModel(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModels compares tree / linear / aggregation predictors
// on held-out quiet measurements (§4.4 model choice).
func BenchmarkAblationModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ModelAblation(experiments.Quick(), uint64(i)+5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TreeMAE, "tree_mae_us")
		b.ReportMetric(r.AggregationMAE, "agg_mae_us")
	}
}

// BenchmarkAblationLambda sweeps the LRFU λ under migration pollution.
func BenchmarkAblationLambda(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.LambdaAblation(experiments.Quick())
		b.ReportMetric(r.HitRatios[0]*100, "lfu_like_hit_%")
		b.ReportMetric(r.LRU*100, "lru_hit_%")
	}
}

// BenchmarkAblationNPB isolates the non-persistent barrier's effect on
// migrated-write starvation (Fig. 10).
func BenchmarkAblationNPB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NPBAblation()
		b.ReportMetric(r.WithoutNPBWaitUS, "no_npb_wait_us")
		b.ReportMetric(r.WithNPBWaitUS, "npb_wait_us")
	}
}

// BenchmarkAblationMirroring isolates I/O mirroring inside lazy
// migration.
func BenchmarkAblationMirroring(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.MirroringAblation(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.WithMirroring.BytesCopied>>20), "mirror_copied_MB")
		b.ReportMetric(float64(r.WithoutMirroring.BytesCopied>>20), "eager_copied_MB")
	}
}

// BenchmarkExtensionDAX measures the DAX access-path study (the paper's
// concluding outlook).
func BenchmarkExtensionDAX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.DAXStudy(experiments.Quick())
		b.ReportMetric(r.Speedups[0], "dax_256B_speedup")
	}
}

// BenchmarkPlacementStudy measures the §5.1.1 initial-placement
// comparison under interference.
func BenchmarkPlacementStudy(b *testing.B) {
	m := benchSharedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.PlacementStudy(experiments.Quick(), m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BASILNVDIMMRate*100, "basil_nvdimm_%")
		b.ReportMetric(r.BCANVDIMMRate*100, "bca_nvdimm_%")
	}
}

// BenchmarkFig9Schedule regenerates the Fig. 9/10 schedule example and
// reports the Policy One makespan gain.
func BenchmarkFig9Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(experiments.Quick())
		base := r.Makespan("baseline")
		p1 := r.Makespan("Policy One")
		if p1 > 0 {
			b.ReportMetric(float64(base)/float64(p1), "p1_makespan_gain")
		}
	}
}

// benchEngineRecord is the schema of BENCH_engine.json: the raw cost of
// the discrete-event hot path (At/Step through a self-rescheduling timer
// wheel), with the engine's own profiling counters enabled so the record
// reflects the instrumented path that real runs with profiling pay.
type benchEngineRecord struct {
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Timers        int     `json:"timers"`
	Events        uint64  `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	NsPerEvent    float64 `json:"ns_per_event"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	HeapPushes    uint64  `json:"heap_pushes"`
	HeapPops      uint64  `json:"heap_pops"`
	MaxTimerDepth int     `json:"max_timer_depth"`
}

// BenchmarkEngineHotPath measures the event loop itself: a wheel of
// self-rescheduling timers with coprime periods (so the heap order churns)
// dispatched through Engine.Step. One benchmark op is one dispatched
// event. Events/sec, ns/event, and allocs/op land in BENCH_engine.json so
// engine-throughput work (ROADMAP) has a tracked baseline.
func BenchmarkEngineHotPath(b *testing.B) {
	const nTimers = 64
	eng := sim.NewEngine()
	eng.EnableProfiling()
	// Coprime-ish periods spread events across the heap instead of
	// batching them at one timestamp.
	for i := 0; i < nTimers; i++ {
		period := sim.Time(97+13*i) * sim.Microsecond
		var tick func()
		tick = func() { eng.Schedule(period, tick) }
		eng.Schedule(sim.Time(i)*sim.Microsecond, tick)
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.Fatal("engine drained: self-rescheduling timers died")
		}
	}
	wall := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	prof := eng.Profile()
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	perSec := 0.0
	if wall > 0 {
		perSec = float64(b.N) / wall.Seconds()
	}
	b.ReportMetric(perSec, "events/sec")
	b.ReportMetric(allocs, "allocs/event")
	rec := benchEngineRecord{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Timers:        nTimers,
		Events:        prof.Events,
		EventsPerSec:  perSec,
		NsPerEvent:    float64(wall.Nanoseconds()) / float64(b.N),
		AllocsPerOp:   allocs,
		HeapPushes:    prof.HeapPushes,
		HeapPops:      prof.HeapPops,
		MaxTimerDepth: prof.MaxDepth,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchMgmtRecord is the schema of BENCH_mgmt.json.
type benchMgmtRecord struct {
	Stores     int     `json:"stores"`
	VMDKs      int     `json:"vmdks"`
	Scheme     string  `json:"scheme"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	WindowUS   float64 `json:"window_us"` // simulated window length
	Iterations int     `json:"iterations"`
	// WindowWallUS is the mean wall-clock cost of simulating one
	// management window: one epoch of the observe → plan → execute
	// pipeline plus the foreground I/O that populates its windows.
	WindowWallUS float64 `json:"window_wall_us"`
	Migrations   int64   `json:"migrations_started"`
}

// BenchmarkManagerEpoch times the management loop's hot path: one node
// with its three datastores (NVDIMM, SSD, HDD), 32 VMDKs with light
// foreground traffic, and the full scheme (contention-aware estimation,
// redirection, tagging), so every pipeline stage runs each window. One
// benchmark iteration advances the simulation by exactly one management
// window — one epoch — and the mean wall cost lands in BENCH_mgmt.json
// alongside BENCH_parallel.json so the pipeline's overhead is tracked
// across refactors.
func BenchmarkManagerEpoch(b *testing.B) {
	const nVMDKs = 32
	model := benchSharedModel(b)
	c := cluster.New()
	if _, err := c.AddNode(cluster.NodeConfig{
		Name:     "bench",
		Channels: 4,
		NVDIMM:   core.ScaledNVDIMMConfig("bench-nvdimm"),
		SSD:      core.ScaledSSDConfig("bench-ssd"),
		HDD:      core.ScaledHDDConfig("bench-hdd", 7),
	}, sim.NewRNG(7)); err != nil {
		b.Fatal(err)
	}
	stores := c.AllStores()
	cfg := mgmt.DefaultConfig()
	cfg.Window = sim.Millisecond
	cfg.MinWindowRequests = 1
	mgr := mgmt.NewManager(c.Eng, cfg, mgmt.Full(), stores)
	mgr.SetModel(device.KindNVDIMM, model)
	p := workload.Profile{Name: "bench", WriteRatio: 0.3, ReadRand: 0.5, WriteRand: 0.5,
		IOSize: 4096, OIO: 1, Footprint: 1 << 20, ThinkTime: 100 * sim.Microsecond}
	for i := 0; i < nVMDKs; i++ {
		v, err := stores[i%len(stores)].CreateVMDK(i+1, 4<<20)
		if err != nil {
			b.Fatal(err)
		}
		workload.NewRunner(c.Eng, sim.NewRNG(uint64(i)+1), p, v, i).Start()
	}
	mgr.Start()
	if err := c.Eng.RunFor(2 * cfg.Window); err != nil { // warm the windows
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := c.Eng.RunFor(cfg.Window); err != nil {
			b.Fatal(err)
		}
	}
	wall := time.Since(start)
	b.StopTimer()
	b.ReportMetric(wall.Seconds()*1e6/float64(b.N), "window_wall_us/op")
	rec := benchMgmtRecord{
		Stores:       len(stores),
		VMDKs:        nVMDKs,
		Scheme:       mgmt.Full().Name,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		WindowUS:     cfg.Window.Seconds() * 1e6,
		Iterations:   b.N,
		WindowWallUS: wall.Seconds() * 1e6 / float64(b.N),
		Migrations:   int64(mgr.Stats().MigrationsStarted),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_mgmt.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchParallelCells is the slice of the experiment matrix used to
// measure harness speedup: cells without model training, covering all
// three intra-cell fan-out shapes (fig5 sweep points, fig9 policy
// schedules, faults scenario systems) plus cells that only parallelize at
// the matrix level.
var benchParallelCells = []string{"table4", "fig5", "fig9", "fig14", "fig15", "dax", "faults"}

// benchParallelRecord is the schema of BENCH_parallel.json. Speedup is a
// pointer so a run that cannot measure parallelism (GOMAXPROCS=1: both
// schedules execute on one core and the ratio is pure noise) records an
// honest null plus a note instead of a fabricated ~1.0 "speedup".
type benchParallelRecord struct {
	Cells        []string `json:"cells"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	Iterations   int      `json:"iterations"`
	SequentialS  float64  `json:"sequential_s"` // mean wall time at -jobs 1
	ParallelS    float64  `json:"parallel_s"`   // mean wall time at -jobs GOMAXPROCS
	Speedup      *float64 `json:"speedup"`      // null when unmeasurable
	ParallelJobs int      `json:"parallel_jobs"`
	Note         string   `json:"note,omitempty"`
}

// BenchmarkExperimentsParallel times the same matrix slice under the
// sequential reference schedule (-jobs 1) and sharded across GOMAXPROCS
// workers, reports the speedup as a metric, and records both wall times
// in BENCH_parallel.json. The outputs are byte-identical between the two
// schedules (see TestMatrixParallelDeterminism in internal/experiments);
// this benchmark measures only the wall-clock gap.
func BenchmarkExperimentsParallel(b *testing.B) {
	run := func(jobs int) time.Duration {
		sc := experiments.Quick()
		sc.Jobs = jobs
		start := time.Now()
		res, err := experiments.RunMatrix(experiments.MatrixOptions{
			Names: benchParallelCells, Scale: sc,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Name, r.Err)
			}
		}
		return time.Since(start)
	}
	var seq, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq += run(1)
		par += run(0)
	}
	b.StopTimer()
	b.ReportMetric(seq.Seconds()/float64(b.N), "seq_s/op")
	b.ReportMetric(par.Seconds()/float64(b.N), "par_s/op")
	rec := benchParallelRecord{
		Cells:        benchParallelCells,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Iterations:   b.N,
		SequentialS:  seq.Seconds() / float64(b.N),
		ParallelS:    par.Seconds() / float64(b.N),
		ParallelJobs: runtime.GOMAXPROCS(0),
	}
	if rec.GOMAXPROCS > 1 && par > 0 {
		speedup := float64(seq) / float64(par)
		rec.Speedup = &speedup
		b.ReportMetric(speedup, "speedup")
	} else {
		rec.Note = "speedup not measurable at GOMAXPROCS=1; run with more cores to record it"
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
