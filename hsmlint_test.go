// Lint gate: these tests run the determinism-contract linter
// (internal/lint, DESIGN.md §10) over the whole module, so `go test .`
// fails on the same findings `go run ./cmd/hsmlint ./...` would report
// in CI. They replace the old standalone doc-lint tests: the docs rules
// now have exactly one implementation, in internal/lint.
package repro

import (
	"reflect"
	"testing"

	"repro/internal/lint"
)

// lintModule runs the selected checks over every package of the module.
func lintModule(t *testing.T, checks []string) []lint.Finding {
	t.Helper()
	m, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := m.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(".", dirs, checks)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestDocLint is the thin successor of the original doc-lint tests: it
// invokes only the docs check (package doc comments everywhere;
// exported-symbol docs in the contract-critical packages).
func TestDocLint(t *testing.T) {
	for _, f := range lintModule(t, []string{"docs"}) {
		t.Error(f)
	}
}

// TestLintClean holds the repository to the full determinism contract:
// every check of the suite, zero findings, matching the CI lint job.
func TestLintClean(t *testing.T) {
	for _, f := range lintModule(t, nil) {
		t.Error(f)
	}
}

// TestLintSuiteRegistry pins the expanded hsmlint v2 suite: all nine
// checks, in registry order, on by default. A check silently dropped
// from the registry would leave TestLintClean green while the gate it
// provided disappears — this test turns that into a failure.
func TestLintSuiteRegistry(t *testing.T) {
	want := []string{
		"walltime", "walltimereach", "globalrand", "maporder",
		"floatorder", "goroutineownership", "indexsync", "journalfence",
		"docs",
	}
	if got := lint.Checks(); !reflect.DeepEqual(got, want) {
		t.Errorf("lint.Checks() = %v, want %v", got, want)
	}
}
