package repro

import "testing"

// TestFacadeSmoke exercises the public API end to end: build a BCA+Lazy
// system with a memory co-runner, run it, and read the report.
func TestFacadeSmoke(t *testing.T) {
	model, err := TrainModel(7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{
		Scheme:     SchemeBCALazy(),
		MemProfile: "429.mcf",
		Apps:       []string{"bayes", "sort"},
		Model:      model,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(100 * Millisecond)
	rep := sys.Report()
	if rep.Scheme != "BCA+Lazy" {
		t.Fatalf("scheme = %q", rep.Scheme)
	}
	if rep.MeanIOPS <= 0 {
		t.Fatal("no throughput")
	}
	if len(rep.DeviceMeanUS) != 3 {
		t.Fatalf("devices = %d", len(rep.DeviceMeanUS))
	}
}

// TestFacadeSchemes checks every exported scheme constructor is wired.
func TestFacadeSchemes(t *testing.T) {
	names := map[string]Scheme{
		"BASIL":         SchemeBASIL(),
		"Pesto":         SchemePesto(),
		"LightSRM":      SchemeLightSRM(),
		"BCA":           SchemeBCA(),
		"BCA+Lazy":      SchemeBCALazy(),
		"BCA+Lazy+Arch": SchemeFull(),
	}
	for want, s := range names {
		if s.Name != want {
			t.Fatalf("scheme name %q != %q", s.Name, want)
		}
	}
}

// TestFacadePolicies checks the scheduling-policy constructors.
func TestFacadePolicies(t *testing.T) {
	if SchedBaseline().MigratedIgnoreBarriers {
		t.Fatal("baseline misdefined")
	}
	if !SchedPolicyOne().MigratedIgnoreBarriers {
		t.Fatal("policy one misdefined")
	}
	if !SchedPolicyTwo().PrioritizePersistent {
		t.Fatal("policy two misdefined")
	}
	c := SchedCombined(Millisecond)
	if !c.NonPersistentBarrier || c.NPBDelay != Millisecond {
		t.Fatal("combined misdefined")
	}
}

// TestScalesDiffer sanity-checks the experiment scales.
func TestScalesDiffer(t *testing.T) {
	if QuickScale().RunTime >= FullScale().RunTime {
		t.Fatal("quick scale should be shorter than full")
	}
}
