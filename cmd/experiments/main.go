// Command experiments regenerates the paper's tables and figures on the
// simulation substrate and prints the rows/series the paper reports.
//
// Usage:
//
//	experiments [-exp all | comma list of table1|table2|table3|table4|
//	             table5|fig4|fig5|fig7|fig9|fig12|fig13|fig14|fig15|
//	             fig16|fig17|tau|placement|dax|faults|ablations]
//	            [-scale quick|full] [-seed N] [-jobs N]
//	            [-policy SPEC] [-exp chaos -scenarios N]
//	            [-trace-out FILE] [-metrics-out FILE] [-sample-ms N]
//	            [-tail-out FILE] [-tail-ms N]
//
// -policy SPEC runs a policy study instead of the matrix: the spec (a
// canonical scheme name or a stage composition like
// "est=predicted,exec=redirect,gate=copy" — see internal/mgmt/policy) is
// compared against the canonical lineup on the Fig. 12 single-node
// interference mix. The matrix experiments and their outputs are
// untouched.
//
// -exp chaos runs the crash/invariant harness instead of the matrix:
// -scenarios randomized fault+crash scenarios (derived from -seed)
// execute with the structural invariant checker armed, and the process
// exits nonzero if any scenario violates an invariant — the report then
// carries the offending scenario's seed, spec, and a one-line
// reproduction command. -scale full doubles the per-scenario run time.
//
// -jobs N shards independent experiment cells (and the sweep points
// inside them) across min(N, cells) worker goroutines; 0 means
// min(GOMAXPROCS, cells). The report on stdout is byte-identical for
// every -jobs value: results are collected by cell index, never by
// completion order, and wall-clock timings go to stderr. See DESIGN.md
// §9 for the determinism contract.
//
// The telemetry flags instrument every system the selected experiments
// build: spans from all of them land in one trace, sampled metrics in
// one CSV, and (with -tail-out) windowed per-store/per-VMDK tail
// latencies in another CSV, with tracks and keys namespaced "sys<k>.…"
// by the experiment matrix's canonical order — stable across -jobs
// settings.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run: all, or a comma list of table1..table5, fig4..fig17, tau, faults, ...")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Uint64("seed", 99, "model-training seed")
	jobs := flag.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS, 1 = sequential)")
	policySpec := flag.String("policy", "", "run a policy study for this spec instead of the matrix (scheme name or stage composition)")
	scenarios := flag.Int("scenarios", 64, "scenario count for -exp chaos")
	traceOut := flag.String("trace-out", "", "write spans from every built system (Chrome trace JSON; .jsonl = line-delimited)")
	metricsOut := flag.String("metrics-out", "", "write sampled metrics from every built system as CSV")
	sampleMS := flag.Int("sample-ms", 25, "metric sampling interval in simulated milliseconds")
	tailOut := flag.String("tail-out", "", "write windowed per-store/per-VMDK tail latency from every built system as CSV")
	tailMS := flag.Int("tail-ms", 10, "tail window length in simulated milliseconds")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		log.Fatalf("unknown scale %q (quick|full)", *scaleName)
	}
	if *sampleMS <= 0 {
		*sampleMS = 25
	}
	if *tailMS <= 0 {
		*tailMS = 10
	}
	tailEvery := sim.Time(0)
	if *tailOut != "" {
		tailEvery = sim.Time(*tailMS) * sim.Millisecond
	}
	scope := core.NewTelemetryScope(*traceOut != "", *metricsOut != "",
		sim.Time(*sampleMS)*sim.Millisecond, tailEvery)
	scale.Scope = scope
	scale.Jobs = *jobs

	if strings.ToLower(*exp) == "chaos" {
		// The chaos harness is dispatched outside the matrix (like -policy):
		// its scenarios arm fault injection and invariant checking, which
		// must never perturb the matrix experiments' golden outputs.
		copts := chaos.Options{Seed: *seed, Scenarios: *scenarios, Jobs: *jobs}
		if *scaleName == "full" {
			copts.RunTime = 400 * sim.Millisecond
			copts.FootprintDivisor = 1024
		}
		result, err := chaos.Run(copts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("===== chaos =====\n%s\n", result)
		if err := result.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *policySpec != "" {
		fmt.Fprintln(os.Stderr, "training NVDIMM performance model...")
		model, err := core.TrainScaledNVDIMMModel(*seed)
		if err != nil {
			log.Fatal(err)
		}
		study, err := experiments.PolicyStudy(*policySpec, scale, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("===== policy =====\n%s\n", study)
		exportTelemetry(scope, *traceOut, *metricsOut, *tailOut)
		return
	}

	var names []string
	if want := strings.ToLower(*exp); want != "all" {
		names = strings.Split(want, ",")
	}
	results, err := experiments.RunMatrix(experiments.MatrixOptions{
		Names: names,
		Scale: scale,
		Seed:  *seed,
		OnModelTrain: func() {
			fmt.Fprintln(os.Stderr, "training NVDIMM performance model...")
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Printf("===== %s =====\n%s\n", r.Name, r.Text)
		fmt.Fprintf(os.Stderr, "%s finished in %.1fs\n", r.Name, r.Elapsed.Seconds())
	}

	exportTelemetry(scope, *traceOut, *metricsOut, *tailOut)
	if failed > 0 {
		os.Exit(1)
	}
}

// exportTelemetry merges and writes the scope's trace/metric/tail
// artifacts (no-op when telemetry was not requested).
func exportTelemetry(scope *core.TelemetryScope, traceOut, metricsOut, tailOut string) {
	if !scope.Enabled() {
		return
	}
	tel := scope.Merge()
	if traceOut != "" {
		if err := writeTrace(traceOut, tel.Tracer); err != nil {
			log.Fatalf("trace export: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tel.Tracer.NumEvents(), traceOut)
	}
	if metricsOut != "" {
		if err := writeCSV(metricsOut, tel.Series); err != nil {
			log.Fatalf("metrics export: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d metric samples to %s\n", tel.Series.Len(), metricsOut)
	}
	if tailOut != "" {
		f, err := os.Create(tailOut)
		if err != nil {
			log.Fatalf("tail export: %v", err)
		}
		err = tel.Tail.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("tail export: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d tail windows to %s\n", tel.Tail.Len(), tailOut)
	}
}

// writeTrace exports recorded spans: Chrome trace JSON by default, JSONL
// when the path ends in .jsonl.
func writeTrace(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeCSV exports the sampled metric time series.
func writeCSV(path string, s *telemetry.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
