// Command experiments regenerates the paper's tables and figures on the
// simulation substrate and prints the rows/series the paper reports.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|table4|table5|fig4|fig5|
//	             fig7|fig9|fig12|fig13|fig14|fig15|fig16|fig17|tau|
//	             placement|dax|ablations]
//	            [-scale quick|full] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..table5, fig4..fig17, tau)")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Uint64("seed", 99, "model-training seed")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		log.Fatalf("unknown scale %q (quick|full)", *scaleName)
	}

	var model *perfmodel.Model
	needModel := func() *perfmodel.Model {
		if model == nil {
			fmt.Fprintln(os.Stderr, "training NVDIMM performance model...")
			m, err := core.TrainScaledNVDIMMModel(*seed)
			if err != nil {
				log.Fatalf("model training: %v", err)
			}
			model = m
		}
		return model
	}

	type runner struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	str := func(s string) fmt.Stringer { return stringResult(s) }
	all := []runner{
		{"table1", func() (fmt.Stringer, error) { return experiments.Table1(), nil }},
		{"table2", func() (fmt.Stringer, error) { r, err := experiments.Table2(scale); return r, err }},
		{"table3", func() (fmt.Stringer, error) { r, err := experiments.Table3(); return r, err }},
		{"table4", func() (fmt.Stringer, error) { return str(experiments.Table4()), nil }},
		{"table5", func() (fmt.Stringer, error) { return str(experiments.Table5()), nil }},
		{"fig4", func() (fmt.Stringer, error) { r, err := experiments.Fig4(scale); return r, err }},
		{"fig5", func() (fmt.Stringer, error) { return experiments.Fig5(scale), nil }},
		{"fig9", func() (fmt.Stringer, error) { return experiments.Fig9(), nil }},
		{"fig7", func() (fmt.Stringer, error) {
			a, err := experiments.Fig7(1.0, scale)
			if err != nil {
				return nil, err
			}
			b, err := experiments.Fig7(0.1, scale)
			if err != nil {
				return nil, err
			}
			return str(a.String() + "\n" + b.String()), nil
		}},
		{"fig12", func() (fmt.Stringer, error) { r, err := experiments.Fig12(scale, needModel()); return r, err }},
		{"fig13", func() (fmt.Stringer, error) { r, err := experiments.Fig13(scale, needModel()); return r, err }},
		{"fig14", func() (fmt.Stringer, error) { return experiments.Fig14(scale), nil }},
		{"fig15", func() (fmt.Stringer, error) { return experiments.Fig15(scale), nil }},
		{"fig16", func() (fmt.Stringer, error) { return experiments.Fig16(scale), nil }},
		{"fig17", func() (fmt.Stringer, error) { r, err := experiments.Fig17(scale, needModel()); return r, err }},
		{"tau", func() (fmt.Stringer, error) { r, err := experiments.TauSweep(scale, needModel()); return r, err }},
		{"placement", func() (fmt.Stringer, error) { r, err := experiments.PlacementStudy(scale, needModel()); return r, err }},
		{"dax", func() (fmt.Stringer, error) { return experiments.DAXStudy(scale), nil }},
		{"ablations", func() (fmt.Stringer, error) {
			ma, err := experiments.ModelAblation(scale, *seed)
			if err != nil {
				return nil, err
			}
			la := experiments.LambdaAblation(scale)
			na := experiments.NPBAblation()
			mi, err := experiments.MirroringAblation(scale, needModel())
			if err != nil {
				return nil, err
			}
			return str(ma.String() + "\n" + la.String() + "\n" + na.String() + "\n" + mi.String()), nil
		}},
	}

	want := strings.ToLower(*exp)
	ran := 0
	for _, r := range all {
		if want != "all" && want != r.name {
			continue
		}
		ran++
		start := time.Now()
		res, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("===== %s (%.1fs) =====\n%s\n", r.name, time.Since(start).Seconds(), res)
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// stringResult adapts a plain string to fmt.Stringer.
type stringResult string

func (s stringResult) String() string { return string(s) }
