// Command experiments regenerates the paper's tables and figures on the
// simulation substrate and prints the rows/series the paper reports.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|table4|table5|fig4|fig5|
//	             fig7|fig9|fig12|fig13|fig14|fig15|fig16|fig17|tau|
//	             placement|dax|faults|ablations]
//	            [-scale quick|full] [-seed N]
//	            [-trace-out FILE] [-metrics-out FILE] [-sample-ms N]
//
// The telemetry flags instrument every system the selected experiments
// build: spans from all of them land in one trace (tracks namespaced
// "sys<k>.…" in construction order) and sampled metrics in one CSV.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..table5, fig4..fig17, tau, faults, ...)")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Uint64("seed", 99, "model-training seed")
	traceOut := flag.String("trace-out", "", "write spans from every built system (Chrome trace JSON; .jsonl = line-delimited)")
	metricsOut := flag.String("metrics-out", "", "write sampled metrics from every built system as CSV")
	sampleMS := flag.Int("sample-ms", 25, "metric sampling interval in simulated milliseconds")
	flag.Parse()

	var tel *core.Telemetry
	if *traceOut != "" || *metricsOut != "" {
		tel = &core.Telemetry{}
		if *traceOut != "" {
			tel.Tracer = telemetry.NewTracer()
		}
		if *metricsOut != "" {
			if *sampleMS <= 0 {
				*sampleMS = 25
			}
			tel.Registry = telemetry.NewRegistry()
			tel.Series = &telemetry.Series{}
			tel.SampleEvery = sim.Time(*sampleMS) * sim.Millisecond
		}
		core.SetDefaultTelemetry(tel)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		log.Fatalf("unknown scale %q (quick|full)", *scaleName)
	}

	var model *perfmodel.Model
	needModel := func() *perfmodel.Model {
		if model == nil {
			fmt.Fprintln(os.Stderr, "training NVDIMM performance model...")
			m, err := core.TrainScaledNVDIMMModel(*seed)
			if err != nil {
				log.Fatalf("model training: %v", err)
			}
			model = m
		}
		return model
	}

	type runner struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	str := func(s string) fmt.Stringer { return stringResult(s) }
	all := []runner{
		{"table1", func() (fmt.Stringer, error) { return experiments.Table1(), nil }},
		{"table2", func() (fmt.Stringer, error) { r, err := experiments.Table2(scale); return r, err }},
		{"table3", func() (fmt.Stringer, error) { r, err := experiments.Table3(); return r, err }},
		{"table4", func() (fmt.Stringer, error) { return str(experiments.Table4()), nil }},
		{"table5", func() (fmt.Stringer, error) { return str(experiments.Table5()), nil }},
		{"fig4", func() (fmt.Stringer, error) { r, err := experiments.Fig4(scale); return r, err }},
		{"fig5", func() (fmt.Stringer, error) { return experiments.Fig5(scale), nil }},
		{"fig9", func() (fmt.Stringer, error) { return experiments.Fig9(), nil }},
		{"fig7", func() (fmt.Stringer, error) {
			a, err := experiments.Fig7(1.0, scale)
			if err != nil {
				return nil, err
			}
			b, err := experiments.Fig7(0.1, scale)
			if err != nil {
				return nil, err
			}
			return str(a.String() + "\n" + b.String()), nil
		}},
		{"fig12", func() (fmt.Stringer, error) { r, err := experiments.Fig12(scale, needModel()); return r, err }},
		{"fig13", func() (fmt.Stringer, error) { r, err := experiments.Fig13(scale, needModel()); return r, err }},
		{"fig14", func() (fmt.Stringer, error) { return experiments.Fig14(scale), nil }},
		{"fig15", func() (fmt.Stringer, error) { return experiments.Fig15(scale), nil }},
		{"fig16", func() (fmt.Stringer, error) { return experiments.Fig16(scale), nil }},
		{"fig17", func() (fmt.Stringer, error) { r, err := experiments.Fig17(scale, needModel()); return r, err }},
		{"tau", func() (fmt.Stringer, error) { r, err := experiments.TauSweep(scale, needModel()); return r, err }},
		{"placement", func() (fmt.Stringer, error) { r, err := experiments.PlacementStudy(scale, needModel()); return r, err }},
		{"dax", func() (fmt.Stringer, error) { return experiments.DAXStudy(scale), nil }},
		{"faults", func() (fmt.Stringer, error) { r, err := experiments.FaultMatrix(scale); return r, err }},
		{"ablations", func() (fmt.Stringer, error) {
			ma, err := experiments.ModelAblation(scale, *seed)
			if err != nil {
				return nil, err
			}
			la := experiments.LambdaAblation(scale)
			na := experiments.NPBAblation()
			mi, err := experiments.MirroringAblation(scale, needModel())
			if err != nil {
				return nil, err
			}
			return str(ma.String() + "\n" + la.String() + "\n" + na.String() + "\n" + mi.String()), nil
		}},
	}

	want := strings.ToLower(*exp)
	ran := 0
	for _, r := range all {
		if want != "all" && want != r.name {
			continue
		}
		ran++
		start := time.Now()
		res, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("===== %s (%.1fs) =====\n%s\n", r.name, time.Since(start).Seconds(), res)
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *exp)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, tel.Tracer); err != nil {
			log.Fatalf("trace export: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tel.Tracer.NumEvents(), *traceOut)
	}
	if *metricsOut != "" {
		if err := writeCSV(*metricsOut, tel.Series); err != nil {
			log.Fatalf("metrics export: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d metric samples to %s\n", tel.Series.Len(), *metricsOut)
	}
}

// writeTrace exports recorded spans: Chrome trace JSON by default, JSONL
// when the path ends in .jsonl.
func writeTrace(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeCSV exports the sampled metric time series.
func writeCSV(path string, s *telemetry.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// stringResult adapts a plain string to fmt.Stringer.
type stringResult string

func (s stringResult) String() string { return string(s) }
