// Command hsmsim runs one configurable heterogeneous-storage-management
// simulation and prints a full report: per-device latencies, per-workload
// throughput, migration activity, and bus-contention totals.
//
// Usage:
//
//	hsmsim [-scheme basil|pesto|lightsrm|bca|bca-lazy|full]
//	       [-policy SPEC] [-stage-spans]
//	       [-mem 429.mcf|470.lbm|433.milc] [-memscale F]
//	       [-nodes N] [-duration MS] [-apps a,b,c] [-tau F] [-seed N]
//	       [-bypass] [-sched baseline|p1|p2|both]
//	       [-replicas N] [-replica-seeds S1,S2,...] [-jobs N]
//	       [-trace-out FILE] [-metrics-out FILE] [-sample-ms N] [-declog N]
//	       [-tail-out FILE] [-tail-ms N] [-slo SPEC]
//	       [-fault-spec SPEC] [-max-events N]
//	       [-invariants] [-footprint-div N]
//
// With -policy the management scheme is given as a policy spec instead
// of a name: either a canonical scheme name or a comma-separated stage
// composition such as "est=predicted,exec=redirect,gate=copy,tag=on"
// (see the internal/mgmt/policy package for the grammar). -stage-spans
// adds per-pipeline-stage instants ("mgmt.observe"/".plan"/".execute")
// and stage tags to the recorded trace; it is off by default because it
// changes trace output.
//
// With -replicas N the same configuration runs N times under different
// seeds (default seed, seed+1, ...; override with -replica-seeds), the
// replicas sharded across -jobs worker goroutines (0 = GOMAXPROCS). Each
// replica prints a one-line summary in replica order, followed by an
// aggregate mean/p95 line over latency and IOPS — the output is identical
// for every -jobs value. Telemetry from all replicas merges into single
// -trace-out/-metrics-out artifacts with tracks namespaced "sys<k>.…" by
// replica index.
//
// With -trace-out the run records per-request, bus, scheduler, and
// migration spans and writes a Chrome trace_event file (load it in
// chrome://tracing or https://ui.perfetto.dev); a path ending in .jsonl
// writes line-delimited JSON instead. With -metrics-out the full metric
// registry is sampled every -sample-ms of simulated time and written as
// CSV.
//
// With -tail-out the run tracks windowed tail latency per store and per
// VMDK (window length -tail-ms of simulated time) and writes the
// deterministic p50/p95/p99/max series as CSV; the report gains lifetime
// tail summaries. With -slo the windows are additionally evaluated
// against tail-latency objectives (grammar in internal/mgmt/slo, e.g.
// "p99=500" or "vmdk=3:max=2ms"): violated windows emit trace instants,
// land in the decision log, and are counted in the report. -slo works
// without -tail-out (a private tracker windows at the management cadence).
//
// With -fault-spec the run arms deterministic fault injection (device
// error rates, latency degradation, outages, link drops/stalls — see the
// faultinject package for the grammar); the report then includes injector
// totals and the manager's retry/abort/quarantine counters. -max-events
// arms a watchdog that aborts runaway runs.
//
// With -invariants the structural invariant checker runs at every
// management epoch, after every crash recovery, and once after the drain;
// the run exits nonzero if any check fails, printing every violation.
// This is the flag chaos-harness reproduction commands use (see
// internal/chaos). -footprint-div overrides the application footprint
// divisor so such commands can match the harness's scaled-down VMDKs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/memsched"
	"repro/internal/mgmt"
	"repro/internal/mgmt/policy"
	"repro/internal/runpool"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func policyByName(name string) (memsched.Policy, error) {
	switch strings.ToLower(name) {
	case "baseline", "":
		return memsched.Baseline(), nil
	case "p1":
		return memsched.PolicyOne(), nil
	case "p2":
		return memsched.PolicyTwo(), nil
	case "both":
		return memsched.Combined(2 * sim.Millisecond), nil
	default:
		return memsched.Policy{}, fmt.Errorf("unknown scheduling policy %q", name)
	}
}

func main() {
	schemeName := flag.String("scheme", "bca-lazy", "management scheme name")
	policySpec := flag.String("policy", "", "management policy spec (overrides -scheme): a scheme name or a stage composition like \"est=predicted,exec=redirect,gate=copy,tag=on\"")
	stageSpans := flag.Bool("stage-spans", false, "emit per-pipeline-stage trace events and stage-tagged decisions (changes trace output)")
	mem := flag.String("mem", "429.mcf", "memory co-runner profile (empty = none)")
	memScale := flag.Float64("memscale", 1, "co-runner intensity multiplier")
	nodes := flag.Int("nodes", 1, "server nodes")
	durationMS := flag.Int("duration", 500, "simulated run time in milliseconds")
	apps := flag.String("apps", "", "comma-separated app list (default: all eight)")
	tau := flag.Float64("tau", 0.5, "imbalance threshold τ")
	seed := flag.Uint64("seed", 42, "simulation seed")
	bypass := flag.Bool("bypass", false, "enable §5.3.2 cache bypassing")
	schedName := flag.String("sched", "baseline", "NVDIMM scheduling policy (baseline|p1|p2|both)")
	dax := flag.Bool("dax", false, "enable the DAX byte-addressable NVDIMM path")
	skew := flag.Float64("skew", 0, "Zipf-like workload hot-spot skew in [0,1)")
	traceOut := flag.String("trace-out", "", "write request/migration spans (Chrome trace JSON; .jsonl = line-delimited)")
	metricsOut := flag.String("metrics-out", "", "write the sampled metric time series as CSV")
	sampleMS := flag.Int("sample-ms", 25, "metric sampling interval in simulated milliseconds")
	decLog := flag.Int("declog", 1024, "management decision-log capacity (0 = off)")
	tailOut := flag.String("tail-out", "", "write per-store/per-VMDK windowed tail latency (p50/p95/p99/max) as CSV")
	tailMS := flag.Int("tail-ms", 10, "tail window length in simulated milliseconds")
	sloSpec := flag.String("slo", "", `tail-latency SLO objectives, e.g. "p99=500" or "store=node0-nvdimm:p95=50us;vmdk=3:max=2ms"`)
	faultSpec := flag.String("fault-spec", "", `deterministic fault injection, e.g. "dev=node0-nvdimm:errate=0.2@40ms..240ms;link=0-1:drop=0.1"`)
	maxEvents := flag.Uint64("max-events", 0, "abort the run after this many engine events (0 = unlimited)")
	invariants := flag.Bool("invariants", false, "arm the structural invariant checker; exit nonzero on any violation")
	footprintDiv := flag.Int64("footprint-div", 0, "application footprint divisor (0 = the core default, 256)")
	replicas := flag.Int("replicas", 1, "run the configuration N times under different seeds")
	replicaSeeds := flag.String("replica-seeds", "", "comma-separated seeds, one per replica (default: seed, seed+1, ...)")
	jobs := flag.Int("jobs", 0, "parallel replica jobs (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	spec := *schemeName
	if *policySpec != "" {
		spec = *policySpec
	}
	scheme, err := policy.Parse(spec)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := policyByName(*schedName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := mgmt.DefaultConfig()
	cfg.Tau = *tau
	cfg.Window = 10 * sim.Millisecond
	cfg.MinWindowRequests = 3
	cfg.DecisionLogCap = *decLog
	cfg.StageSpans = *stageSpans

	if *tailMS <= 0 {
		*tailMS = 10
	}
	var tel *core.Telemetry
	if *traceOut != "" || *metricsOut != "" || *tailOut != "" {
		tel = &core.Telemetry{}
		if *traceOut != "" {
			tel.Tracer = telemetry.NewTracer()
		}
		if *metricsOut != "" {
			if *sampleMS <= 0 {
				*sampleMS = 25
			}
			tel.Registry = telemetry.NewRegistry()
			tel.SampleEvery = sim.Time(*sampleMS) * sim.Millisecond
		}
		if *tailOut != "" {
			tel.Tail = telemetry.NewTailSeries()
			tel.TailEvery = sim.Time(*tailMS) * sim.Millisecond
		}
	}

	opts := core.Options{
		Nodes:               *nodes,
		Scheme:              scheme,
		Mgmt:                cfg,
		MemProfile:          *mem,
		MemScale:            *memScale,
		Seed:                *seed,
		SchedPolicy:         pol,
		BypassMigratedReads: *bypass,
		DAX:                 *dax,
		WorkloadSkew:        *skew,
		Telemetry:           tel,
		SLOSpec:             *sloSpec,
		FaultSpec:           *faultSpec,
		MaxEvents:           *maxEvents,
		Invariants:          *invariants,
		FootprintDivisor:    *footprintDiv,
	}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	dur := sim.Time(*durationMS) * sim.Millisecond

	if *replicas > 1 {
		if *sampleMS <= 0 {
			*sampleMS = 25
		}
		err := runReplicas(opts, scheme, *replicas, *replicaSeeds, *jobs, dur,
			*traceOut, *metricsOut, *sampleMS, *tailOut, *tailMS)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if scheme.NeedsModel() {
		fmt.Println("training NVDIMM performance model...")
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %s for %v (nodes=%d mem=%q)...\n", scheme.Name, dur, *nodes, *mem)
	if err := sys.Run(dur); err != nil {
		log.Fatalf("run aborted: %v", err)
	}
	printReport(sys.Report())
	if sys.Injector != nil {
		fmt.Printf("fault injection:     %s\n", sys.Injector.Stats())
	}
	if *invariants {
		fmt.Printf("%s\n", sys.Invariants)
		if err := sys.Invariants.Err(); err != nil {
			log.Fatal(err)
		}
	}
	if *decLog > 0 {
		l := sys.Manager.Log()
		fmt.Printf("decision log:        %d/%d entries, %d dropped\n", l.Len(), l.Cap(), l.Dropped())
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, tel.Tracer); err != nil {
			log.Fatalf("trace export: %v", err)
		}
		fmt.Printf("wrote %d trace events to %s\n", tel.Tracer.NumEvents(), *traceOut)
	}
	if *metricsOut != "" {
		series := sys.Sampler().Series()
		if err := writeCSV(*metricsOut, series); err != nil {
			log.Fatalf("metrics export: %v", err)
		}
		fmt.Printf("wrote %d metric samples to %s\n", series.Len(), *metricsOut)
	}
	if *tailOut != "" {
		if err := writeTailCSV(*tailOut, tel.Tail); err != nil {
			log.Fatalf("tail export: %v", err)
		}
		fmt.Printf("wrote %d tail windows to %s\n", tel.Tail.Len(), *tailOut)
	}
}

// runReplicas executes the configuration n times under different seeds,
// sharded across the run pool. Per-replica summary lines print in replica
// order — never completion order — followed by a mean/p95 aggregate, so
// the output is identical for every -jobs value. When a BCA scheme needs
// the performance model it is trained once from the base seed and shared
// read-only by all replicas. Telemetry from all replicas merges into
// single artifacts with "sys<k>." tracks numbered by replica index.
func runReplicas(opts core.Options, scheme mgmt.Scheme, n int, seedList string,
	jobs int, dur sim.Time, traceOut, metricsOut string, sampleMS int,
	tailOut string, tailMS int) error {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = opts.Seed + uint64(i)
	}
	if seedList != "" {
		parts := strings.Split(seedList, ",")
		if len(parts) != n {
			return fmt.Errorf("-replica-seeds has %d entries, want %d", len(parts), n)
		}
		for i, p := range parts {
			v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return fmt.Errorf("-replica-seeds[%d]: %v", i, err)
			}
			seeds[i] = v
		}
	}

	if scheme.NeedsModel() && opts.Model == nil {
		fmt.Println("training NVDIMM performance model...")
		m, err := core.TrainScaledNVDIMMModel(opts.Seed)
		if err != nil {
			return err
		}
		opts.Model = m
	}

	tailEvery := sim.Time(0)
	if tailOut != "" {
		tailEvery = sim.Time(tailMS) * sim.Millisecond
	}
	scope := core.NewTelemetryScope(traceOut != "", metricsOut != "",
		sim.Time(sampleMS)*sim.Millisecond, tailEvery)
	scopes := scope.Fork(n)

	fmt.Printf("running %s x%d replicas for %v (nodes=%d mem=%q)...\n",
		scheme.Name, n, dur, opts.Nodes, opts.MemProfile)
	reports, errs := runpool.Do(jobs, n, func(i int) (core.Report, error) {
		o := opts
		o.Seed = seeds[i]
		o.Telemetry = nil
		o.Scope = scopes[i]
		sys, err := core.NewSystem(o)
		if err != nil {
			return core.Report{}, fmt.Errorf("replica %d (seed %d): %w", i, seeds[i], err)
		}
		if err := sys.Run(dur); err != nil {
			return core.Report{}, fmt.Errorf("replica %d (seed %d): %w", i, seeds[i], err)
		}
		return sys.Report(), nil
	})
	if err := runpool.FirstError(errs); err != nil {
		return err
	}

	var lat, iops stats.Sample
	for i, rep := range reports {
		fmt.Printf("replica %d (seed %d): mean latency %.1fus, mean IOPS %.0f\n",
			i, seeds[i], rep.MeanLatencyUS, rep.MeanIOPS)
		lat.Add(rep.MeanLatencyUS)
		iops.Add(rep.MeanIOPS)
	}
	fmt.Printf("aggregate over %d replicas: mean latency %.1fus (p95 %.1fus), mean IOPS %.0f (p95 %.0f)\n",
		n, lat.Mean(), lat.Percentile(95), iops.Mean(), iops.Percentile(95))

	if scope.Enabled() {
		tel := scope.Merge()
		if traceOut != "" {
			if err := writeTrace(traceOut, tel.Tracer); err != nil {
				return fmt.Errorf("trace export: %w", err)
			}
			fmt.Printf("wrote %d trace events to %s\n", tel.Tracer.NumEvents(), traceOut)
		}
		if metricsOut != "" {
			if err := writeCSV(metricsOut, tel.Series); err != nil {
				return fmt.Errorf("metrics export: %w", err)
			}
			fmt.Printf("wrote %d metric samples to %s\n", tel.Series.Len(), metricsOut)
		}
		if tailOut != "" {
			if err := writeTailCSV(tailOut, tel.Tail); err != nil {
				return fmt.Errorf("tail export: %w", err)
			}
			fmt.Printf("wrote %d tail windows to %s\n", tel.Tail.Len(), tailOut)
		}
	}
	return nil
}

// writeTrace exports recorded spans: Chrome trace JSON by default, JSONL
// when the path ends in .jsonl.
func writeTrace(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeCSV exports the sampled metric time series.
func writeCSV(path string, s *telemetry.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTailCSV exports the windowed tail-latency series.
func writeTailCSV(path string, s *telemetry.TailSeries) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func printReport(rep core.Report) {
	fmt.Printf("\n=== report: %s (simulated %v) ===\n", rep.Scheme, rep.Elapsed)

	fmt.Println("\ndevices (mean latency, normalized to slowest):")
	names := make([]string, 0, len(rep.DeviceMeanUS))
	for n := range rep.DeviceMeanUS {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-16s %10.1fus  (%.3f)\n", n, rep.DeviceMeanUS[n], rep.NormalizedLatency[n])
	}

	fmt.Println("\nworkloads (requests/sec):")
	apps := make([]string, 0, len(rep.WorkloadIOPS))
	for a := range rep.WorkloadIOPS {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	for _, a := range apps {
		fmt.Printf("  %-16s %10.0f\n", a, rep.WorkloadIOPS[a])
	}

	if len(rep.Tail) > 0 {
		fmt.Println("\ntail latency (lifetime, us):")
		fmt.Printf("  %-16s %10s %10s %10s %10s %10s\n", "key", "count", "p50", "p95", "p99", "max")
		for _, t := range rep.Tail {
			fmt.Printf("  %-16s %10d %10.1f %10.1f %10.1f %10.1f\n",
				t.Key, t.Summary.Count, t.Summary.P50US, t.Summary.P95US, t.Summary.P99US, t.Summary.MaxUS)
		}
	}
	if rep.SLOWindows > 0 {
		fmt.Printf("\nSLO:                 %d violation windows over %d inspected\n",
			rep.SLOViolationWindows, rep.SLOWindows)
		for _, v := range rep.SLO {
			fmt.Printf("  %-16s %d violation windows\n", v.Key, v.Windows)
		}
	}

	fmt.Printf("\nmean IOPS:           %.0f\n", rep.MeanIOPS)
	fmt.Printf("mean latency:        %.1fus\n", rep.MeanLatencyUS)
	fmt.Printf("NVDIMM contention:   %.1fms total\n", rep.NVDIMMContentionUS/1000)
	fmt.Printf("cache hit ratio:     %.1f%%\n", rep.CacheHitRatio*100)
	m := rep.Migration
	fmt.Printf("migrations:          %d started, %d completed, %d skipped, %d ping-pongs\n",
		m.MigrationsStarted, m.MigrationsCompleted, m.MigrationsSkipped, m.PingPongs)
	fmt.Printf("migration traffic:   %dMB copied, %dMB mirrored, %v total time\n",
		m.BytesCopied>>20, m.BytesMirrored>>20, m.MigrationTime)
	if m.CopyRetries > 0 || m.MigrationsAborted > 0 || m.Quarantines > 0 {
		fmt.Printf("failure handling:    %d copy retries, %d aborts, %d quarantines, %d evacuations, %d readmissions\n",
			m.CopyRetries, m.MigrationsAborted, m.Quarantines, m.Evacuations, m.Readmissions)
	}
	if rep.IOErrors > 0 {
		fmt.Printf("I/O errors:          %d\n", rep.IOErrors)
	}
	if rep.NetworkBytes > 0 {
		fmt.Printf("network traffic:     %dMB\n", rep.NetworkBytes>>20)
	}
}
