// Command tracegen emits synthetic I/O traces in CSV for offline
// analysis: one of the eight big-data application profiles, or a custom
// workload-characteristic vector. The trace format is
//
//	issue_ns,op,offset,size,latency_ns
//
// measured against a quiet scaled device so latencies reflect device
// behaviour without bus contention.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hdd"
	"repro/internal/nvdimm"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "sort", "application profile (bayes, dfsioe_r, ..., or 'custom')")
	devKind := flag.String("device", "nvdimm", "device to run against: nvdimm|ssd|hdd")
	durationMS := flag.Int("duration", 100, "simulated milliseconds")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output file (- for stdout)")

	// Custom-profile knobs (used with -app custom).
	wr := flag.Float64("wr", 0.5, "write ratio")
	rnd := flag.Float64("rand", 0.5, "read/write randomness")
	ios := flag.Int64("ios", 4096, "I/O size bytes")
	oio := flag.Int("oio", 8, "outstanding I/Os")
	flag.Parse()

	var p workload.Profile
	if *app == "custom" {
		p = workload.Profile{Name: "custom", WriteRatio: *wr, ReadRand: *rnd,
			WriteRand: *rnd, IOSize: *ios, OIO: *oio, Footprint: 1 << 30}
	} else {
		var ok bool
		p, ok = workload.AppProfile(*app)
		if !ok {
			log.Fatalf("unknown app %q", *app)
		}
		p.Footprint /= 256 // scaled device footprints
	}

	eng := sim.NewEngine()
	var dev device.Device
	switch strings.ToLower(*devKind) {
	case "nvdimm":
		dev = nvdimm.New(eng, bus.NewChannel(eng, 0), core.ScaledNVDIMMConfig("nvdimm"))
	case "ssd":
		dev = ssd.New(eng, core.ScaledSSDConfig("ssd"))
	case "hdd":
		dev = hdd.New(eng, core.ScaledHDDConfig("hdd", *seed))
	default:
		log.Fatalf("unknown device %q", *devKind)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	fmt.Fprintln(w, "issue_ns,op,offset,size,latency_ns")

	// Wrap the device so completions stream to the writer.
	t := &tracingTarget{dev: dev, w: w}
	r := workload.NewRunner(eng, sim.NewRNG(*seed), p, t, 0)
	r.Start()
	eng.RunFor(sim.Time(*durationMS) * sim.Millisecond)
	r.Stop()
	eng.Run()
	fmt.Fprintf(os.Stderr, "emitted %d requests over %v simulated\n", r.Completed(), eng.Now())
}

// tracingTarget forwards to a device and writes each completion as CSV.
type tracingTarget struct {
	dev device.Device
	w   *bufio.Writer
}

func (t *tracingTarget) Submit(r *trace.IORequest, done device.Completion) {
	t.dev.Submit(r, func(c *trace.IORequest) {
		fmt.Fprintf(t.w, "%d,%s,%d,%d,%d\n",
			int64(c.Issue), c.Op, c.Offset, c.Size, int64(c.Latency()))
		if done != nil {
			done(c)
		}
	})
}
