// Command hsmlint runs the repository's determinism-contract linter
// (internal/lint) over package patterns and fails the build on findings.
// DESIGN.md §10 documents the checks and the contract clauses they guard.
//
// Usage:
//
//	go run ./cmd/hsmlint [-format text|json|github] [-checks walltime,docs,...] [pattern ...]
//
// Patterns follow the go tool's shape and are resolved against the
// working directory, exactly like the go tool: "./..." (default) lints
// everything under the current directory, "./internal/..." a subtree,
// "./internal/sim" one package. Findings print one per line as
// "file:line: [check] message"; -format=json emits a JSON array
// (-json is the legacy spelling) and -format=github emits GitHub
// Actions workflow annotations ("::error file=...,line=...::[check]
// message") so findings land inline on pull requests. The exit status
// is 1 when there are findings, 2 on usage or load errors, 0 when
// clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code, so the behavior
// is testable without spawning a process.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hsmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "shorthand for -format=json")
	format := fs.String("format", "text", "output format: text, json, or github (workflow annotations)")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all of "+strings.Join(lint.Checks(), ",")+")")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "hsmlint: unknown -format %q (text, json, or github)\n", *format)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "hsmlint:", err)
		return 2
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "hsmlint:", err)
		return 2
	}
	var selected []string
	if *checksFlag != "" {
		selected = strings.Split(*checksFlag, ",")
	}
	findings, err := lint.Run(root, dirs, selected)
	if err != nil {
		fmt.Fprintln(stderr, "hsmlint:", err)
		return 2
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "hsmlint:", err)
			return 2
		}
	case "github":
		for _, f := range findings {
			fmt.Fprintln(stdout, githubAnnotation(f))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "hsmlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// githubAnnotation renders a finding as a GitHub Actions workflow
// command, which the runner turns into an inline PR annotation. Values
// use the Actions escaping rules: % CR LF everywhere, plus ":" and ","
// inside properties.
func githubAnnotation(f lint.Finding) string {
	return fmt.Sprintf("::error file=%s,line=%d::%s",
		githubEscapeProp(f.File), f.Line,
		githubEscapeData(fmt.Sprintf("[%s] %s", f.Check, f.Message)))
}

// githubEscapeData escapes a workflow-command message value.
func githubEscapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// githubEscapeProp escapes a workflow-command property value.
func githubEscapeProp(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, mirroring the go tool.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves go-tool-style package patterns to sorted,
// deduplicated module-root-relative package directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	m, err := lint.LoadModule(root)
	if err != nil {
		return nil, err
	}
	all, err := m.Dirs()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, pat := range patterns {
		rel, recursive := patternRel(root, pat)
		if rel == "" {
			return nil, fmt.Errorf("pattern %q is outside the module at %s", pat, root)
		}
		matched := false
		for _, d := range all {
			if d == rel || (recursive && (rel == "." || strings.HasPrefix(d, rel+"/"))) {
				add(d)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// patternRel normalizes one pattern against the module root, reporting
// whether it is recursive ("/..." suffix). An empty rel means the
// pattern escapes the module. Patterns are relative to the *working
// directory*, matching the go tool: "./..." in a subdirectory means
// that subtree, not the whole module (it used to mean the module, which
// silently over-linted when invoked from a package directory).
func patternRel(root, pat string) (rel string, recursive bool) {
	if p, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = p
		if pat == "" {
			pat = "."
		}
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return "", recursive
	}
	r, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(r, "..") {
		return "", recursive
	}
	return filepath.ToSlash(r), recursive
}
