package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixtureModule returns the absolute path of internal/lint's golden
// fixture module, the same corpus the linter's own tests run against.
func fixtureModule(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(abs, "go.mod")); err != nil {
		t.Fatalf("fixture module missing: %v", err)
	}
	return abs
}

// TestPatternExpansionFromSubdir audits pattern expansion from a
// non-root working directory: like the go tool, a relative "./..."
// means the subtree under the *current directory*, not the whole
// module, and plain relative patterns resolve against the working
// directory too.
func TestPatternExpansionFromSubdir(t *testing.T) {
	root := fixtureModule(t)
	t.Chdir(filepath.Join(root, "internal"))

	got, err := expandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range got {
		if !strings.HasPrefix(d, "internal/") {
			t.Errorf("./... from internal/ must stay inside the subtree, got %q", d)
		}
	}
	if len(got) < 5 {
		t.Errorf("./... from internal/ matched only %v", got)
	}

	one, err := expandPatterns(root, []string{"./journalfence"})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"internal/journalfence"}; !reflect.DeepEqual(one, want) {
		t.Errorf("./journalfence from internal/ = %v, want %v", one, want)
	}

	up, err := expandPatterns(root, []string{"../..."})
	if err != nil {
		t.Fatal(err)
	}
	wholeModule := false
	for _, d := range up {
		if d == "." || strings.HasPrefix(d, "cmd/") {
			wholeModule = true
		}
	}
	if !wholeModule {
		t.Errorf("../... from internal/ must cover the whole module, got %v", up)
	}

	if _, err := expandPatterns(root, []string{"../../..."}); err == nil {
		t.Error("pattern escaping the module must be an error")
	}
	if _, err := expandPatterns(root, []string{"./nosuchpkg"}); err == nil {
		t.Error("pattern matching no packages must be an error")
	}
}

// TestPatternExpansionFromRoot pins that the CI invocation shape —
// "./..." from the module root — still expands to every package.
func TestPatternExpansionFromRoot(t *testing.T) {
	root := fixtureModule(t)
	t.Chdir(root)
	got, err := expandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	all, err := m.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, all) {
		t.Errorf("./... from root = %v, want all dirs %v", got, all)
	}
}

// TestGithubFormat runs the CLI end to end (in process) with
// -format=github over a fixture package and checks the workflow
// annotation shape.
func TestGithubFormat(t *testing.T) {
	root := fixtureModule(t)
	t.Chdir(root)
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	code := run([]string{"-format=github", "-checks", "floatorder", "./internal/floatorder"}, outF, errF)
	if code != 1 {
		data, _ := os.ReadFile(errF.Name())
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, data)
	}
	data, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 annotations, got %d:\n%s", len(lines), data)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=internal/floatorder/f.go,line=") {
			t.Errorf("annotation shape wrong: %q", line)
		}
		if !strings.Contains(line, "::[floatorder] ") {
			t.Errorf("annotation missing check-tagged message: %q", line)
		}
	}
}

// TestGithubEscaping pins the workflow-command escaping rules.
func TestGithubEscaping(t *testing.T) {
	f := lint.Finding{File: "a,b:c.go", Line: 7, Check: "walltime", Message: "50% bad\nnext"}
	got := githubAnnotation(f)
	want := "::error file=a%2Cb%3Ac.go,line=7::[walltime] 50%25 bad%0Anext"
	if got != want {
		t.Errorf("githubAnnotation = %q, want %q", got, want)
	}
}

// TestUnknownFormat pins the usage error for a bad -format value.
func TestUnknownFormat(t *testing.T) {
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-format=yaml"}, outF, errF); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}
