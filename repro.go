// Package repro is a from-scratch Go reproduction of "Towards Efficient
// NVDIMM-based Heterogeneous Storage Hierarchy Management for Big Data
// Workloads" (Chen, Shao, Liu, Feng, Li — MICRO-52, 2019).
//
// The package re-exports the public surface of the simulation and
// management stack:
//
//   - a discrete-event simulated storage hierarchy: flash-backed NVDIMMs
//     sharing DDR channels with DRAM (bus contention included), PCIe SSDs,
//     and SATA HDDs;
//   - the paper's §4 performance model — a regression tree over workload
//     characteristics predicting contention-free device latency, with
//     BC = MP − PP contention estimation;
//   - the §5 storage manager — bus-contention-aware placement and
//     imbalance detection, lazy migration with I/O mirroring and
//     cost/benefit gating, and the §5.3 architectural optimizations
//     (migration-aware flash scheduling and buffer-cache bypassing);
//   - the baselines BASIL, Pesto, and LightSRM;
//   - regenerators for every table and figure in the paper's evaluation.
//
// Quick start:
//
//	sys, err := repro.NewSystem(repro.Options{
//	    Scheme:     repro.SchemeBCALazy(),
//	    MemProfile: "429.mcf",
//	})
//	if err != nil { ... }
//	sys.Run(500 * repro.Millisecond)
//	fmt.Println(sys.Report().MeanLatencyUS)
//
// See the examples directory for runnable scenarios and EXPERIMENTS.md
// for paper-versus-measured results.
package repro

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memsched"
	"repro/internal/mgmt"
	"repro/internal/mgmt/policy"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// Simulated-time units (nanosecond-resolution virtual clock).
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Time is a point or duration in simulated time.
type Time = sim.Time

// System is an assembled simulation: server nodes, workloads, the trained
// model, and the storage manager.
type System = core.System

// Options configures a System; the zero value selects the evaluation
// defaults (single node, all eight big-data applications, no memory
// co-runner, BASIL management).
type Options = core.Options

// Report summarizes a run: per-device latencies, workload throughput,
// migration statistics, and contention totals.
type Report = core.Report

// WindowSample is one management-window observation (latency, prediction,
// memory intensity, cache hit ratio).
type WindowSample = core.WindowSample

// NewSystem builds a system from options; it trains the NVDIMM
// performance model when the scheme requires one and none was injected.
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// Scheme is a named composition of management-pipeline stages (observe,
// estimate, plan, execute) selecting which techniques are active.
type Scheme = mgmt.Scheme

// ParsePolicy resolves a policy spec — a canonical scheme name such as
// "bca-lazy", or a stage composition such as
// "est=predicted,exec=redirect,gate=copy,tag=on" — into a Scheme. See
// the internal/mgmt/policy package for the grammar.
func ParsePolicy(spec string) (Scheme, error) { return policy.Parse(spec) }

// ManagerConfig parameterizes the management loop (window length,
// imbalance threshold τ, migration executor limits).
type ManagerConfig = mgmt.Config

// The management schemes of the paper's evaluation (§2.2 baselines and
// §5 proposals).
var (
	SchemeBASIL    = mgmt.BASIL
	SchemePesto    = mgmt.Pesto
	SchemeLightSRM = mgmt.LightSRM
	SchemeBCA      = mgmt.BCA
	SchemeBCALazy  = mgmt.BCALazy
	SchemeFull     = mgmt.Full
)

// SchedPolicy selects the NVDIMM transaction-queue scheduling behaviour
// (§5.3.1).
type SchedPolicy = memsched.Policy

// Scheduling policies: barrier-respecting FCFS, Policy One (migrated
// writes ignore barriers), Policy Two (persistent writes prioritized),
// and the combination with the non-persistent barrier.
var (
	SchedBaseline  = memsched.Baseline
	SchedPolicyOne = memsched.PolicyOne
	SchedPolicyTwo = memsched.PolicyTwo
	SchedCombined  = memsched.Combined
)

// Model is the trained §4 performance model (PP = f(WC), Eq. 1–2).
type Model = perfmodel.Model

// TrainModel trains the NVDIMM performance model used by BCA schemes on
// quiet scaled devices. Models are reusable across systems with the same
// scaled configuration; train once and inject via Options.Model.
func TrainModel(seed uint64) (*Model, error) { return core.TrainScaledNVDIMMModel(seed) }

// ExperimentScale selects how long experiment regenerators run.
type ExperimentScale = experiments.Scale

// QuickScale is the test/bench-friendly experiment scale; FullScale the
// report-quality one used by cmd/experiments.
var (
	QuickScale = experiments.Quick
	FullScale  = experiments.Full
)
